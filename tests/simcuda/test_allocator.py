"""Unit + property tests for the fragmentation-aware device allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcuda.allocator import DeviceAllocator, OutOfMemory

KIB = 1024
MIB = 1024**2


def test_allocate_returns_distinct_addresses():
    a = DeviceAllocator(1 * MIB)
    p1 = a.allocate(1000)
    p2 = a.allocate(1000)
    assert p1 != p2
    assert a.allocation_count == 2


def test_alignment():
    a = DeviceAllocator(1 * MIB)
    p = a.allocate(1)
    assert p % DeviceAllocator.ALIGNMENT == 0
    assert a.size_of(p) == DeviceAllocator.ALIGNMENT


def test_free_returns_bytes_and_coalesces():
    a = DeviceAllocator(1 * MIB)
    p1 = a.allocate(100 * KIB)
    p2 = a.allocate(100 * KIB)
    p3 = a.allocate(100 * KIB)
    a.free(p1)
    a.free(p3)
    a.free(p2)  # middle free must coalesce everything back
    assert a.free_bytes == 1 * MIB
    assert a.largest_free_block == 1 * MIB


def test_oom_on_capacity():
    a = DeviceAllocator(100 * KIB)
    a.allocate(90 * KIB)
    with pytest.raises(OutOfMemory):
        a.allocate(20 * KIB)


def test_fragmentation_blocks_large_alloc_despite_free_bytes():
    """Free bytes may be sufficient while no single block is — the reason
    the paper's runtime must also consult cudaMalloc's return code."""
    a = DeviceAllocator(1 * MIB)
    blocks = [a.allocate(128 * KIB) for _ in range(8)]
    assert a.free_bytes == 0
    # Free alternating blocks -> 512 KiB free but fragmented in 128 KiB holes
    for p in blocks[::2]:
        a.free(p)
    assert a.free_bytes == 512 * KIB
    assert a.largest_free_block == 128 * KIB
    assert not a.can_allocate(256 * KIB)
    with pytest.raises(OutOfMemory):
        a.allocate(256 * KIB)
    assert a.fragmentation() > 0.5


def test_double_free_raises():
    a = DeviceAllocator(1 * MIB)
    p = a.allocate(1000)
    a.free(p)
    with pytest.raises(KeyError):
        a.free(p)


def test_free_unknown_address_raises():
    a = DeviceAllocator(1 * MIB)
    with pytest.raises(KeyError):
        a.free(0xDEAD)


def test_zero_and_negative_sizes_rejected():
    a = DeviceAllocator(1 * MIB)
    with pytest.raises(ValueError):
        a.allocate(0)
    with pytest.raises(ValueError):
        a.allocate(-5)
    assert not a.can_allocate(0)


def test_reset_restores_full_capacity():
    a = DeviceAllocator(1 * MIB)
    for _ in range(5):
        a.allocate(10 * KIB)
    a.reset()
    assert a.free_bytes == 1 * MIB
    assert a.allocation_count == 0


def test_owns():
    a = DeviceAllocator(1 * MIB)
    p = a.allocate(100)
    assert a.owns(p)
    assert not a.owns(p + 1)
    a.free(p)
    assert not a.owns(p)


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        DeviceAllocator(0)


def test_base_address_nonzero():
    a = DeviceAllocator(1 * MIB)
    assert a.allocate(100) >= DeviceAllocator.BASE_ADDRESS


# ---------------------------------------------------------------------------
# property-based: the allocator never loses or invents memory, never
# overlaps live allocations, and always coalesces adjacent free blocks.
# ---------------------------------------------------------------------------

@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["alloc", "free"]), st.integers(1, 64 * KIB)),
        min_size=1,
        max_size=60,
    )
)
def test_allocator_invariants(ops):
    a = DeviceAllocator(512 * KIB)
    live = []
    for kind, size in ops:
        if kind == "alloc":
            try:
                p = a.allocate(size)
            except OutOfMemory:
                # OOM must only happen when no block fits.
                assert a.largest_free_block < a._round_up(size)
                continue
            live.append(p)
        elif live:
            idx = size % len(live)
            a.free(live.pop(idx))

        # Invariant 1: conservation of bytes.
        assert a.used_bytes + a.free_bytes == a.capacity
        # Invariant 2: live allocations do not overlap.
        spans = sorted((addr, addr + a.size_of(addr)) for addr in live)
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2
        # Invariant 3: free list is sorted, non-overlapping, coalesced.
        free = a._free
        for (a1, n1), (a2, _n2) in zip(free, free[1:]):
            assert a1 + n1 < a2  # strictly apart (equal would mean uncoalesced)


@settings(max_examples=100, deadline=None)
@given(sizes=st.lists(st.integers(1, 32 * KIB), min_size=1, max_size=40))
def test_alloc_all_then_free_all_restores_capacity(sizes):
    a = DeviceAllocator(4 * MIB)
    ptrs = []
    for s in sizes:
        ptrs.append(a.allocate(s))
    for p in reversed(ptrs):
        a.free(p)
    assert a.free_bytes == a.capacity
    assert a.largest_free_block == a.capacity


# ---------------------------------------------------------------------------
# O(1) bookkeeping (running free-byte total + size multiset) and the
# best-fit placement mode.
# ---------------------------------------------------------------------------

def _bookkeeping_consistent(a: DeviceAllocator) -> None:
    """The O(1) accounting must equal a recount over the block list."""
    assert a.free_bytes == sum(size for _addr, size in a._free)
    assert sorted(size for _addr, size in a._free) == a._sizes
    assert a.largest_free_block == (
        max((size for _addr, size in a._free), default=0)
    )


def test_mode_validation():
    with pytest.raises(ValueError):
        DeviceAllocator(1 * MIB, mode="worst_fit")
    assert DeviceAllocator(1 * MIB, mode="best_fit").mode == "best_fit"


def test_both_neighbour_coalescing_merges_into_one_block():
    """Freeing the middle of three adjacent blocks must absorb both
    neighbours in a single merge (one block, one multiset entry)."""
    a = DeviceAllocator(1 * MIB)
    p1 = a.allocate(64 * KIB)
    p2 = a.allocate(64 * KIB)
    p3 = a.allocate(64 * KIB)
    guard = a.allocate(64 * KIB)  # keeps the tail block separate
    a.free(p1)
    a.free(p3)
    assert len(a._free) == 3  # hole, hole, tail
    a.free(p2)  # both-neighbour merge
    assert len(a._free) == 2  # merged hole + tail
    assert (p1, 192 * KIB) in a._free
    _bookkeeping_consistent(a)
    a.free(guard)
    assert a._free == [(DeviceAllocator.BASE_ADDRESS, a.capacity)]
    _bookkeeping_consistent(a)


def test_exact_fit_removes_block_entirely():
    """An allocation that consumes a free block exactly must remove it
    from both the block list and the size multiset (no zero-size stub)."""
    a = DeviceAllocator(1 * MIB)
    p1 = a.allocate(100 * KIB)
    a.allocate(100 * KIB)  # guard so the hole stays isolated
    a.free(p1)
    assert 100 * KIB in a._sizes
    p = a.allocate(100 * KIB)  # exact fit into the hole
    assert p == p1
    assert 100 * KIB not in a._sizes
    assert all(size > 0 for _addr, size in a._free)
    _bookkeeping_consistent(a)


def test_reset_after_partial_frees():
    a = DeviceAllocator(1 * MIB)
    ptrs = [a.allocate(32 * KIB) for _ in range(8)]
    for p in ptrs[::2]:
        a.free(p)
    a.reset()
    assert a.free_bytes == a.capacity
    assert a.largest_free_block == a.capacity
    assert a.allocation_count == 0
    assert a._free == [(DeviceAllocator.BASE_ADDRESS, a.capacity)]
    _bookkeeping_consistent(a)
    # The allocator is fully usable after the reset.
    assert a.allocate(a.capacity) == DeviceAllocator.BASE_ADDRESS


def test_alignment_rounding_accounts_rounded_size():
    """free_bytes must drop by the ALIGNMENT-rounded size, not the
    requested size, and oddly-sized frees must restore it exactly."""
    a = DeviceAllocator(1 * MIB)
    p = a.allocate(DeviceAllocator.ALIGNMENT + 1)
    assert a.size_of(p) == 2 * DeviceAllocator.ALIGNMENT
    assert a.free_bytes == a.capacity - 2 * DeviceAllocator.ALIGNMENT
    assert a.free(p) == 2 * DeviceAllocator.ALIGNMENT
    assert a.free_bytes == a.capacity
    _bookkeeping_consistent(a)


def test_best_fit_prefers_smallest_hole():
    """best_fit fills the tightest hole; first_fit takes the lowest one."""
    def make_holes(mode):
        a = DeviceAllocator(1 * MIB, mode=mode)
        big = a.allocate(300 * KIB)
        a.allocate(64 * KIB)   # guard
        small = a.allocate(100 * KIB)
        a.allocate(64 * KIB)   # guard
        a.free(big)            # low, loose hole
        a.free(small)          # high, tight hole
        return a, big, small

    a, big, small = make_holes("best_fit")
    assert a.allocate(100 * KIB) == small
    a, big, small = make_holes("first_fit")
    assert a.allocate(100 * KIB) == big


def test_best_fit_reduces_fragmentation_on_churn():
    """Regression (satellite): on a mixed-size churn pattern, best_fit
    must end no more fragmented than first_fit — and strictly less here,
    because first_fit splinters the big block for every small request."""
    def churn(mode):
        a = DeviceAllocator(2 * MIB, mode=mode)
        big = a.allocate(1 * MIB)
        small = [a.allocate(40 * KIB) for _ in range(12)]
        a.free(big)  # one big hole at the bottom
        for i in range(0, len(small), 2):
            a.free(small[i])  # plus a comb of small holes
        # New small allocations that stay live: first_fit carves them
        # out of the big hole (splintering it); best_fit drops them into
        # the exact-fit comb holes and keeps the big block intact.
        for _ in range(6):
            a.allocate(40 * KIB)
        _bookkeeping_consistent(a)
        return a.fragmentation(), a.largest_free_block

    frag_ff, largest_ff = churn("first_fit")
    frag_bf, largest_bf = churn("best_fit")
    assert frag_bf < frag_ff
    assert largest_bf >= largest_ff


@settings(max_examples=150, deadline=None)
@given(
    mode=st.sampled_from(["first_fit", "best_fit"]),
    ops=st.lists(
        st.tuples(st.sampled_from(["alloc", "free"]), st.integers(1, 64 * KIB)),
        min_size=1,
        max_size=60,
    ),
)
def test_o1_bookkeeping_matches_block_list(mode, ops):
    """The running total and size multiset never drift from the block
    list, in either placement mode, across arbitrary alloc/free churn."""
    a = DeviceAllocator(512 * KIB, mode=mode)
    live = []
    for kind, size in ops:
        if kind == "alloc":
            try:
                live.append(a.allocate(size))
            except OutOfMemory:
                assert a.largest_free_block < a._round_up(size)
        elif live:
            a.free(live.pop(size % len(live)))
        _bookkeeping_consistent(a)
        assert a.used_bytes + a.free_bytes == a.capacity
