"""Tests for the simulated CUDA driver: contexts, memory, kernels, FCFS."""

import pytest

from repro.sim import Environment
from repro.simcuda import (
    CudaDriver,
    CudaError,
    CudaRuntimeError,
    KernelDescriptor,
    KernelLaunch,
    QUADRO_2000,
    TESLA_C1060,
    TESLA_C2050,
)
from repro.simcuda import timing

MIB = 1024**2


def make_driver(specs=None):
    env = Environment()
    driver = CudaDriver(env, specs or [TESLA_C2050])
    return env, driver


def run(env, gen):
    """Run a driver sub-process to completion, returning its value."""
    p = env.process(gen)
    env.run(until=p)
    return p.value


# ---------------------------------------------------------------------------
# device specs
# ---------------------------------------------------------------------------

def test_spec_relative_speeds_match_paper_roles():
    # C2050 is the fast card, C1060 medium, Quadro 2000 slow.
    assert TESLA_C2050.effective_gflops > TESLA_C1060.effective_gflops
    assert TESLA_C1060.effective_gflops > QUADRO_2000.effective_gflops


def test_spec_memory_capacities():
    assert TESLA_C2050.memory_bytes == 3 * 1024**3
    assert TESLA_C1060.memory_bytes == 4 * 1024**3
    assert QUADRO_2000.memory_bytes == 1 * 1024**3


def test_spec_core_counts():
    assert TESLA_C2050.core_count == 448
    assert TESLA_C1060.core_count == 240
    assert QUADRO_2000.core_count == 192


# ---------------------------------------------------------------------------
# contexts
# ---------------------------------------------------------------------------

def test_context_create_consumes_time_and_reserves_memory():
    env, driver = make_driver()
    device = driver.devices[0]
    free_before = device.free_memory
    ctx = run(env, driver.create_context(device))
    assert env.now == pytest.approx(timing.CONTEXT_CREATE_SECONDS)
    assert device.free_memory == free_before - TESLA_C2050.context_reservation_bytes
    assert ctx in driver.contexts_on(device)


def test_context_limit_enforced():
    """The paper observed at most 8 concurrent contexts per device."""
    env, driver = make_driver()
    device = driver.devices[0]
    for _ in range(TESLA_C2050.max_contexts):
        run(env, driver.create_context(device))
    with pytest.raises(CudaRuntimeError) as e:
        run(env, driver.create_context(device))
    assert e.value.code == CudaError.cudaErrorTooManyContexts


def test_destroy_context_releases_everything():
    env, driver = make_driver()
    device = driver.devices[0]
    ctx = run(env, driver.create_context(device))
    run(env, driver.malloc(ctx, 100 * MIB))
    run(env, driver.destroy_context(ctx))
    assert device.free_memory == device.memory_capacity
    assert ctx.destroyed
    assert ctx not in driver.contexts_on(device)


def test_destroy_context_idempotent():
    env, driver = make_driver()
    ctx = run(env, driver.create_context(driver.devices[0]))
    run(env, driver.destroy_context(ctx))
    run(env, driver.destroy_context(ctx))  # no error


# ---------------------------------------------------------------------------
# memory
# ---------------------------------------------------------------------------

def test_malloc_free_roundtrip():
    env, driver = make_driver()
    ctx = run(env, driver.create_context(driver.devices[0]))
    addr = run(env, driver.malloc(ctx, 10 * MIB))
    assert ctx.owns_pointer(addr)
    assert ctx.allocated_bytes >= 10 * MIB
    run(env, driver.free(ctx, addr))
    assert not ctx.owns_pointer(addr)


def test_malloc_oom_returns_cuda_error():
    env, driver = make_driver([QUADRO_2000])
    ctx = run(env, driver.create_context(driver.devices[0]))
    with pytest.raises(CudaRuntimeError) as e:
        run(env, driver.malloc(ctx, 2 * 1024 * MIB))  # 2 GiB on a 1 GiB card
    assert e.value.code == CudaError.cudaErrorMemoryAllocation


def test_aggregate_oom_across_contexts():
    """Two apps that fit individually can exceed capacity together — the
    multi-tenancy failure mode motivating the paper."""
    env, driver = make_driver()
    dev = driver.devices[0]
    ctx1 = run(env, driver.create_context(dev))
    ctx2 = run(env, driver.create_context(dev))
    per_app = int(dev.memory_capacity * 0.6)
    run(env, driver.malloc(ctx1, per_app))  # fits alone
    with pytest.raises(CudaRuntimeError) as e:
        run(env, driver.malloc(ctx2, per_app))  # aggregate exceeds capacity
    assert e.value.code == CudaError.cudaErrorMemoryAllocation


def test_free_foreign_pointer_rejected():
    env, driver = make_driver()
    dev = driver.devices[0]
    ctx1 = run(env, driver.create_context(dev))
    ctx2 = run(env, driver.create_context(dev))
    addr = run(env, driver.malloc(ctx1, MIB))
    with pytest.raises(CudaRuntimeError) as e:
        run(env, driver.free(ctx2, addr))
    assert e.value.code == CudaError.cudaErrorInvalidDevicePointer


def test_memcpy_h2d_takes_pcie_time():
    env, driver = make_driver()
    ctx = run(env, driver.create_context(driver.devices[0]))
    addr = run(env, driver.malloc(ctx, 500 * MIB))
    t0 = env.now
    run(env, driver.memcpy_h2d(ctx, addr, 500 * MIB))
    elapsed = env.now - t0
    expected = timing.copy_seconds(TESLA_C2050, 500 * MIB)
    assert elapsed == pytest.approx(expected)
    assert elapsed > 0.05  # 500 MiB at ~5 GB/s is ~0.1 s


def test_memcpy_beyond_allocation_rejected():
    """Bad memory operations (transfers beyond an allocation's boundary)
    must fail — under the paper's runtime these are caught *before*
    reaching the driver."""
    env, driver = make_driver()
    ctx = run(env, driver.create_context(driver.devices[0]))
    addr = run(env, driver.malloc(ctx, MIB))
    with pytest.raises(CudaRuntimeError) as e:
        run(env, driver.memcpy_h2d(ctx, addr, 2 * MIB))
    assert e.value.code == CudaError.cudaErrorInvalidValue


def test_memcpy_to_unowned_pointer_rejected():
    env, driver = make_driver()
    ctx = run(env, driver.create_context(driver.devices[0]))
    with pytest.raises(CudaRuntimeError) as e:
        run(env, driver.memcpy_h2d(ctx, 0xBAD, MIB))
    assert e.value.code == CudaError.cudaErrorInvalidDevicePointer


# ---------------------------------------------------------------------------
# kernels
# ---------------------------------------------------------------------------

def test_kernel_time_scales_with_device_speed():
    k = KernelDescriptor(name="k", flops=1e12)
    fast = timing.kernel_seconds(TESLA_C2050, k)
    slow = timing.kernel_seconds(QUADRO_2000, k)
    assert slow / fast == pytest.approx(
        TESLA_C2050.effective_gflops / QUADRO_2000.effective_gflops, rel=1e-3
    )


def test_launch_executes_and_accounts():
    env, driver = make_driver()
    dev = driver.devices[0]
    ctx = run(env, driver.create_context(dev))
    addr = run(env, driver.malloc(ctx, MIB))
    k = KernelDescriptor(name="k", flops=1e12)
    t0 = env.now
    run(env, driver.launch(ctx, KernelLaunch.simple(k, [addr])))
    assert env.now - t0 == pytest.approx(timing.kernel_seconds(TESLA_C2050, k))
    assert dev.kernels_executed == 1
    assert dev.busy_seconds > 0


def test_launch_with_invalid_pointer_fails():
    env, driver = make_driver()
    ctx = run(env, driver.create_context(driver.devices[0]))
    k = KernelDescriptor(name="k", flops=1e9)
    with pytest.raises(CudaRuntimeError) as e:
        run(env, driver.launch(ctx, KernelLaunch.simple(k, [0x123])))
    assert e.value.code == CudaError.cudaErrorLaunchFailure


def test_kernels_from_different_contexts_serialize_fcfs():
    """One kernel at a time per device, FCFS across contexts (CUDA 3.x)."""
    env, driver = make_driver()
    dev = driver.devices[0]
    k = KernelDescriptor(name="k", flops=TESLA_C2050.effective_gflops * 1e9)  # 1 s each
    finish_times = {}

    def app(name):
        ctx = yield from driver.create_context(dev)
        addr = yield from driver.malloc(ctx, MIB)
        yield from driver.launch(ctx, KernelLaunch.simple(k, [addr]))
        finish_times[name] = env.now

    env.process(app("a"))
    env.process(app("b"))
    env.run()
    ts = sorted(finish_times.values())
    # Second kernel finishes ~1 s after the first: serialized, not parallel.
    assert ts[1] - ts[0] == pytest.approx(1.0, rel=0.05)


def test_copy_can_overlap_kernel():
    env, driver = make_driver()
    dev = driver.devices[0]
    k = KernelDescriptor(name="k", flops=TESLA_C2050.effective_gflops * 1e9)  # 1 s

    def app_compute():
        ctx = yield from driver.create_context(dev)
        a = yield from driver.malloc(ctx, MIB)
        yield from driver.launch(ctx, KernelLaunch.simple(k, [a]))
        return env.now

    def app_copy():
        ctx = yield from driver.create_context(dev)
        a = yield from driver.malloc(ctx, 500 * MIB)
        yield from driver.memcpy_h2d(ctx, a, 500 * MIB)
        return env.now

    p1 = env.process(app_compute())
    p2 = env.process(app_copy())
    env.run()
    # The copy (~0.1 s) completes while the 1 s kernel is still running.
    assert p2.value < p1.value


# ---------------------------------------------------------------------------
# failures / hotplug
# ---------------------------------------------------------------------------

def test_failed_device_rejects_operations():
    env, driver = make_driver()
    dev = driver.devices[0]
    ctx = run(env, driver.create_context(dev))
    dev.fail()
    with pytest.raises(CudaRuntimeError) as e:
        run(env, driver.malloc(ctx, MIB))
    assert e.value.code == CudaError.cudaErrorDevicesUnavailable


def test_failure_mid_kernel_detected_at_completion():
    env, driver = make_driver()
    dev = driver.devices[0]
    k = KernelDescriptor(name="k", flops=TESLA_C2050.effective_gflops * 1e9)  # 1 s

    def app():
        ctx = yield from driver.create_context(dev)
        a = yield from driver.malloc(ctx, MIB)
        yield from driver.launch(ctx, KernelLaunch.simple(k, [a]))

    def failer():
        yield env.timeout(0.5)
        dev.fail()

    p = env.process(app())
    env.process(failer())
    with pytest.raises(CudaRuntimeError):
        env.run(until=p)


def test_add_remove_device():
    env, driver = make_driver([TESLA_C2050])
    assert driver.device_count() == 1
    d2 = driver.add_device(TESLA_C1060)
    assert driver.device_count() == 2
    driver.remove_device(d2)
    assert driver.device_count() == 1
    assert d2.failed


def test_get_unknown_device_raises():
    env, driver = make_driver()
    with pytest.raises(CudaRuntimeError) as e:
        driver.get_device(999)
    assert e.value.code == CudaError.cudaErrorInvalidDevice
