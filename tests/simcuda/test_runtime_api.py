"""Tests for the per-thread CUDA Runtime API facade (the bare-runtime path)."""

import pytest

from repro.sim import Environment
from repro.simcuda import (
    CudaDriver,
    CudaError,
    CudaRuntimeAPI,
    CudaRuntimeError,
    FatBinary,
    KernelDescriptor,
    KernelLaunch,
    TESLA_C1060,
    TESLA_C2050,
)

MIB = 1024**2


def setup():
    env = Environment()
    driver = CudaDriver(env, [TESLA_C2050, TESLA_C1060])
    api = CudaRuntimeAPI(driver, owner="app0")
    return env, driver, api


def run(env, gen):
    p = env.process(gen)
    env.run(until=p)
    return p.value


def test_device_count():
    env, driver, api = setup()
    assert api.cuda_get_device_count() == 2


def test_lazy_context_on_first_malloc():
    env, driver, api = setup()
    assert api.context is None
    run(env, api.cuda_malloc(MIB))
    assert api.context is not None
    assert api.context.device is driver.devices[0]


def test_set_device_directs_context():
    env, driver, api = setup()
    api.cuda_set_device(driver.devices[1].device_id)
    run(env, api.cuda_malloc(MIB))
    assert api.context.device is driver.devices[1]


def test_set_device_after_context_fails():
    env, driver, api = setup()
    run(env, api.cuda_malloc(MIB))
    with pytest.raises(CudaRuntimeError) as e:
        api.cuda_set_device(driver.devices[1].device_id)
    assert e.value.code == CudaError.cudaErrorSetOnActiveProcess


def test_launch_requires_configure_call():
    env, driver, api = setup()
    k = KernelDescriptor(name="k", flops=1e9)
    with pytest.raises(CudaRuntimeError) as e:
        run(env, api.cuda_launch(KernelLaunch.simple(k, [])))
    assert e.value.code == CudaError.cudaErrorMissingConfiguration


def test_full_application_flow():
    env, driver, api = setup()
    fatbin = FatBinary()
    k = KernelDescriptor(name="vecadd", flops=1e9)

    def app():
        yield from api.register_fat_binary(fatbin)
        yield from api.register_function(fatbin, k)
        a = yield from api.cuda_malloc(10 * MIB)
        yield from api.cuda_memcpy_h2d(a, 10 * MIB)
        api.cuda_configure_call(grid=(100, 1, 1))
        yield from api.cuda_launch(KernelLaunch.simple(k, [a]))
        yield from api.cuda_memcpy_d2h(a, 10 * MIB)
        yield from api.cuda_free(a)
        yield from api.cuda_thread_exit()

    run(env, app())
    assert driver.devices[0].kernels_executed == 1
    assert driver.devices[0].free_memory == driver.devices[0].memory_capacity


def test_last_error_latched_and_cleared():
    env, driver, api = setup()
    with pytest.raises(CudaRuntimeError):
        run(env, api.cuda_malloc(100 * 1024**3))  # 100 GiB
    assert api.cuda_get_last_error() == CudaError.cudaErrorMemoryAllocation
    assert api.cuda_get_last_error() == CudaError.cudaSuccess


def test_register_function_requires_registered_fatbin():
    env, driver, api = setup()
    k = KernelDescriptor(name="k", flops=1)
    with pytest.raises(CudaRuntimeError):
        run(env, api.register_function(FatBinary(), k))


def test_thread_exit_without_context_is_noop():
    env, driver, api = setup()
    run(env, api.cuda_thread_exit())
    assert api.context is None


def test_no_device_error():
    env = Environment()
    driver = CudaDriver(env, [])
    api = CudaRuntimeAPI(driver)

    def app():
        yield from api.cuda_malloc(MIB)

    p = env.process(app())
    with pytest.raises(CudaRuntimeError) as e:
        env.run(until=p)
    assert e.value.code == CudaError.cudaErrorNoDevice


def test_fatbin_sharing_exclusion_flags():
    fb = FatBinary()
    fb.register_function(KernelDescriptor(name="a", flops=1, uses_dynamic_alloc=True))
    assert fb.needs_exclusion_from_sharing
    fb2 = FatBinary()
    fb2.register_function(KernelDescriptor(name="b", flops=1, has_pointer_nesting=True))
    assert fb2.has_pointer_nesting
    assert not fb2.needs_exclusion_from_sharing


def test_fatbin_duplicate_function_rejected():
    fb = FatBinary()
    fb.register_function(KernelDescriptor(name="a", flops=1))
    with pytest.raises(ValueError):
        fb.register_function(KernelDescriptor(name="a", flops=2))
