"""ASCII bar-chart rendering tests."""

from repro.experiments.figures import FigureResult
from repro.experiments.report import format_bars


def sample_result():
    return FigureResult(
        figure="Figure X",
        x_label="jobs",
        x_values=[8, 16],
        series={
            "serialized execution (1 vGPU)": [100.0, 200.0],
            "GPU sharing (4 vGPUs)": [90.0, 120.0],
        },
        annotations={"swaps (4 vGPUs)": [3, 11]},
    )


def test_bars_scale_to_peak():
    out = format_bars(sample_result(), width=40)
    lines = out.splitlines()
    # The tallest bar fills the width; shorter ones are proportional.
    longest = max(line.count("█") for line in lines)
    assert longest == 40
    # 90/200 of 40 ≈ 18
    bar_90 = next(line for line in lines if "90.0" in line)
    assert abs(bar_90.count("█") - 18) <= 1


def test_bars_annotations_attach_to_matching_series():
    out = format_bars(sample_result())
    lines = out.splitlines()
    sharing_lines = [line for line in lines if "GPU sharing" in line]
    assert all("[swaps=" in line for line in sharing_lines)
    serialized_lines = [line for line in lines if "serialized" in line]
    assert all("[swaps=" not in line for line in serialized_lines)


def test_bars_handle_none_values():
    r = FigureResult(
        figure="F",
        x_label="x",
        x_values=[1],
        series={"a": [None], "b": [5.0]},
    )
    out = format_bars(r)
    assert "(n/a)" in out
    assert "5.0" in out


def test_bars_empty_series():
    r = FigureResult(figure="F", x_label="x", x_values=[], series={"a": []})
    assert "no data" in format_bars(r)


def test_every_x_value_gets_a_group():
    out = format_bars(sample_result())
    assert "jobs = 8" in out
    assert "jobs = 16" in out
