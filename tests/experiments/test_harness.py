"""Tests for the experiment harness and figure drivers."""

import pytest

from repro.core import RuntimeConfig
from repro.experiments import figures, run_cluster_batch, run_node_batch
from repro.experiments.figures import FigureResult
from repro.experiments.report import format_figure, format_table
from repro.simcuda import TESLA_C2050
from repro.workloads import make_job, workload


def small_jobs(n, use_runtime=True):
    return [make_job(workload("HS"), name=f"hs{i}", use_runtime=use_runtime)
            for i in range(n)]


def test_run_node_batch_collects_metrics():
    result = run_node_batch(
        small_jobs(3),
        [TESLA_C2050],
        RuntimeConfig(vgpus_per_device=4),
        label="probe",
    )
    assert result.label == "probe"
    assert result.errors == 0
    assert len(result.job_times) == 3
    assert result.total_time == pytest.approx(max(result.job_times))
    assert result.avg_time <= result.total_time
    assert result.stats["kernels_launched"] == 3


def test_run_node_batch_tag_breakdown_and_utilization():
    jobs = small_jobs(2) + [make_job(workload("BFS"), name="bfs0")]
    result = run_node_batch(jobs, [TESLA_C2050], RuntimeConfig(vgpus_per_device=4))
    assert set(result.tag_times) == {"HS", "BFS"}
    assert len(result.tag_times["HS"]) == 2
    avg = result.avg_by_tag()
    assert avg["HS"] > 0 and avg["BFS"] > 0
    assert 0.0 < result.mean_gpu_utilization <= 1.0
    assert len(result.gpu_utilization) == 1


def test_run_node_batch_bare_mode_has_no_runtime_stats():
    result = run_node_batch(small_jobs(2, use_runtime=False),
                            [TESLA_C2050], config=None)
    assert result.errors == 0
    assert result.stats == {}
    assert result.swaps == 0 and result.migrations == 0


def test_run_cluster_batch_merges_node_stats():
    result = run_cluster_batch(
        small_jobs(4),
        [[TESLA_C2050], [TESLA_C2050]],
        RuntimeConfig(vgpus_per_device=2),
    )
    assert result.errors == 0
    assert result.stats["kernels_launched"] == 4
    assert result.stats["connections_accepted"] == 4


def test_run_arrival_process_serves_and_drains():
    from repro.experiments import run_arrival_process
    from repro.sim import RngStreams

    rng = RngStreams(3).stream("arrivals")
    result = run_arrival_process(
        [workload("HS")],
        [TESLA_C2050],
        RuntimeConfig(vgpus_per_device=4),
        rng,
        arrival_rate_per_s=0.3,
        horizon_s=30.0,
    )
    assert result.errors == 0
    assert len(result.job_times) >= 3
    assert all(t > 0 for t in result.job_times)
    # The run includes the drain: makespan ≥ horizon-ish.
    assert result.total_time >= 25.0
    assert "HS" in result.tag_times


def test_run_arrival_process_deterministic():
    from repro.experiments import run_arrival_process
    from repro.sim import RngStreams

    def go():
        rng = RngStreams(5).stream("arrivals")
        return run_arrival_process(
            [workload("HS")],
            [TESLA_C2050],
            RuntimeConfig(vgpus_per_device=2),
            rng,
            arrival_rate_per_s=0.4,
            horizon_s=20.0,
        )

    a, b = go(), go()
    assert a.job_times == b.job_times


def test_figures_deterministic_for_seed():
    a = figures.fig7_swapping(seed=1, cpu_fractions=(0.0,), njobs=6)
    b = figures.fig7_swapping(seed=1, cpu_fractions=(0.0,), njobs=6)
    assert a.series == b.series
    assert a.annotations == b.annotations


def test_figure_result_series_value():
    r = FigureResult(
        figure="F", x_label="x", x_values=[1, 2],
        series={"s": [10.0, 20.0]},
    )
    assert r.series_value("s", 2) == 20.0
    with pytest.raises(ValueError):
        r.series_value("s", 3)


def test_format_figure_renders_all_parts():
    r = FigureResult(
        figure="Figure X",
        x_label="jobs",
        x_values=[1],
        series={"a": [1.234], "b": [None]},
        annotations={"swaps": [7]},
        avg_series={"a": [0.5]},
    )
    text = format_figure(r)
    assert "Figure X" in text
    assert "1.2" in text
    assert "-" in text  # None rendered as dash
    assert "swaps" in text and "7" in text
    assert "Avg: a" in text


def test_format_table_alignment():
    out = format_table(["col", "x"], [["a", "1"], ["long-value", "2"]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert all(len(line) == len(lines[0]) for line in lines[1:])


def test_reproduce_cli_runs_subset(capsys):
    from repro.experiments.reproduce import main

    rc = main(["fig7", "--quick", "--seed", "0"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Figure 7" in out
    assert "serialized execution (1 vGPU)" in out


def test_reproduce_cli_rejects_unknown():
    from repro.experiments.reproduce import main

    with pytest.raises(SystemExit):
        main(["nope"])
