"""CLI tests."""

import pytest

from repro.cli import main


def test_devices_lists_presets(capsys):
    assert main(["devices"]) == 0
    out = capsys.readouterr().out
    assert "Tesla C2050" in out
    assert "Quadro 2000" in out


def test_catalog_lists_all_benchmarks(capsys):
    assert main(["catalog"]) == 0
    out = capsys.readouterr().out
    for tag in ("BP", "SC", "MM-L", "BS-L"):
        assert tag in out


def test_run_executes_batch(capsys):
    rc = main(["run", "--jobs", "HS:2", "--vgpus", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "total time" in out
    assert "errors     : 0" in out


def test_run_bare_mode(capsys):
    rc = main(["run", "--jobs", "HS", "--bare"])
    assert rc == 0
    assert "bare CUDA" in capsys.readouterr().out


def test_run_rejects_unknown_gpu():
    with pytest.raises(SystemExit):
        main(["run", "--jobs", "HS", "--gpus", "rtx9090"])


def test_run_rejects_unknown_workload():
    with pytest.raises(KeyError):
        main(["run", "--jobs", "NOPE"])


def test_run_with_policy_and_flags(capsys):
    rc = main([
        "run", "--jobs", "HS:2", "--policy", "sjf",
        "--consolidation", "--eager-transfers",
    ])
    assert rc == 0


def test_reproduce_subcommand(capsys):
    rc = main(["reproduce", "fig7", "--quick"])
    assert rc == 0
    assert "Figure 7" in capsys.readouterr().out
