"""Wire-timing tests: payload sizes translate into transfer time, which
is where the runtime's interception overhead comes from."""

import pytest

from repro.net import AFUNIX_LINK, Listener, RpcClient, RpcServer, connect
from repro.sim import Environment


def echo_server(env, listener, response_bytes=0):
    def handler(request):
        yield env.timeout(0)
        if response_bytes:
            return ("__bytes__", response_bytes)
        return request.args.get("x")

    def serve():
        sock = yield listener.accept()
        yield from RpcServer(sock, handler).serve()

    env.process(serve())


def timed_call(payload_bytes=0, response_bytes=0):
    env = Environment()
    listener = Listener(env)
    echo_server(env, listener, response_bytes)
    out = {}

    def client():
        rpc = RpcClient(connect(env, listener))
        t0 = env.now
        yield from rpc.call("op", payload_bytes=payload_bytes, x=1)
        out["elapsed"] = env.now - t0

    p = env.process(client())
    env.run(until=p)
    return out["elapsed"]


def test_bigger_request_payload_takes_longer():
    small = timed_call(payload_bytes=1_000)
    big = timed_call(payload_bytes=100_000_000)
    assert big > small
    # 100 MB at the afunix bandwidth dominates: ~25 ms.
    assert big - small == pytest.approx(
        (100_000_000 - 1_000) / AFUNIX_LINK.bandwidth_bps, rel=0.05
    )


def test_response_payload_charged_on_the_way_back():
    no_data = timed_call()
    with_data = timed_call(response_bytes=50_000_000)
    assert with_data > no_data


def test_minimum_call_cost_is_two_messages():
    elapsed = timed_call()
    # Two transmissions (request+response): ≥ 2 × per-message overhead
    # plus two propagation latencies.
    floor = 2 * AFUNIX_LINK.per_message_overhead_s + 2 * AFUNIX_LINK.latency_s
    assert elapsed >= floor


def test_concurrent_clients_are_independent_connections():
    env = Environment()
    listener = Listener(env)
    done = []

    def handler(request):
        yield env.timeout(0.01)
        return request.args["who"]

    def serve_all():
        while True:
            sock = yield listener.accept()
            env.process(RpcServer(sock, handler).serve())

    def client(who):
        rpc = RpcClient(connect(env, listener))
        result = yield from rpc.call("op", who=who)
        done.append(result)

    env.process(serve_all())
    for i in range(5):
        env.process(client(f"c{i}"))
    env.run(until=env.timeout(1.0))
    assert sorted(done) == [f"c{i}" for i in range(5)]
