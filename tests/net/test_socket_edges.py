"""Socket/channel edge cases."""

import pytest

from repro.net import AFUNIX_LINK, Channel, connect, Listener
from repro.sim import Environment


def test_try_recv_nonblocking():
    env = Environment()
    ch = Channel(env, AFUNIX_LINK)
    assert ch.try_recv() is None

    def sender():
        yield from ch.send("x")

    env.process(sender())
    env.run()
    assert ch.try_recv() == "x"
    assert ch.try_recv() is None


def test_channel_pending_counts_undelivered():
    env = Environment()
    ch = Channel(env, AFUNIX_LINK)

    def sender():
        for i in range(3):
            yield from ch.send(i)

    env.process(sender())
    env.run()
    assert ch.pending == 3


def test_socket_close_prevents_send():
    env = Environment()
    listener = Listener(env)
    sock = connect(env, listener)
    sock.close()
    assert sock.closed

    def sender():
        yield from sock.send("x")

    p = env.process(sender())
    with pytest.raises(ConnectionError):
        env.run(until=p)


def test_socket_bytes_sent_accounting():
    env = Environment()
    listener = Listener(env)
    done = {}

    def server():
        s = yield listener.accept()
        yield s.recv()
        done["ok"] = True

    def client():
        s = connect(env, listener)
        yield from s.send("payload", nbytes=1234)
        done["sent"] = s.bytes_sent

    env.process(server())
    env.process(client())
    env.run()
    assert done["sent"] == 1234
    assert done["ok"]


def test_listener_backlog_counts():
    env = Environment()
    listener = Listener(env, name="l")
    connect(env, listener)
    connect(env, listener)
    assert listener.backlog == 2
