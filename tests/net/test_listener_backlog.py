"""Bounded accept backlog on the Listener (listen(2) semantics)."""

import pytest

from repro.core import Frontend, NodeRuntime, RuntimeConfig
from repro.net.socket import Listener, connect
from repro.sim import Environment
from repro.simcuda import CudaDriver, TESLA_C2050


def test_over_backlog_connect_fails_fast():
    env = Environment()
    listener = Listener(env, name="srv", backlog_limit=2)
    connect(env, listener, client_name="c1")
    connect(env, listener, client_name="c2")
    assert listener.backlog == 2
    with pytest.raises(ConnectionRefusedError):
        connect(env, listener, client_name="c3")
    assert listener.refused == 1
    assert listener.backlog == 2  # the refused connection left no trace


def test_accepting_drains_the_backlog_and_reopens_it():
    env = Environment()
    listener = Listener(env, name="srv", backlog_limit=1)
    connect(env, listener, client_name="c1")
    got = {}

    def server():
        got["sock"] = yield listener.accept()

    env.process(server())
    env.run()
    assert got["sock"].peer_name == "c1"
    # Accepted: the slot is free again.
    connect(env, listener, client_name="c2")
    assert listener.backlog == 1


def test_default_backlog_is_unbounded():
    env = Environment()
    listener = Listener(env, name="srv")
    for i in range(50):
        connect(env, listener, client_name=f"c{i}")
    assert listener.backlog == 50
    assert listener.refused == 0


def test_backlog_limit_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Listener(env, backlog_limit=0)
    with pytest.raises(ValueError):
        RuntimeConfig(listener_backlog=0)


def test_runtime_wires_config_backlog_through():
    """Regression: a runtime with listener_backlog set refuses the N+1th
    un-accepted connection instead of queueing it forever."""
    env = Environment()
    driver = CudaDriver(env, [TESLA_C2050])
    runtime = NodeRuntime(
        env, driver, RuntimeConfig(listener_backlog=2)
    )
    # The runtime is deliberately NOT started: nothing accepts, so the
    # backlog fills exactly to the configured limit.
    connect(env, runtime.listener, client_name="c1")
    connect(env, runtime.listener, client_name="c2")
    with pytest.raises(ConnectionRefusedError):
        connect(env, runtime.listener, client_name="c3")
    snapshot = runtime.metrics.snapshot()
    assert snapshot["listener_backlog"] == 2
    assert snapshot["listener_refused"] == 1


def test_runtime_under_backlog_serves_normally():
    env = Environment()
    driver = CudaDriver(env, [TESLA_C2050])
    runtime = NodeRuntime(env, driver, RuntimeConfig(listener_backlog=4))
    env.process(runtime.start())
    done = []

    def app(name):
        fe = Frontend(env, runtime.listener, name=name)
        yield from fe.open()
        yield from fe.cuda_thread_exit()
        done.append(name)

    for i in range(3):
        env.process(app(f"a{i}"))
    env.run()
    assert len(done) == 3
    assert runtime.connections.listener.refused == 0
