"""Tests for channels, sockets and RPC framing."""

import pytest

from repro.sim import Environment
from repro.net import (
    AFUNIX_LINK,
    Channel,
    connect,
    LinkSpec,
    Listener,
    Request,
    RpcClient,
    RpcServer,
    TCP_10GBE_LINK,
)


def test_linkspec_transmit_seconds():
    link = LinkSpec(name="t", latency_s=1e-3, bandwidth_bps=1e6, per_message_overhead_s=1e-4)
    assert link.transmit_seconds(1000) == pytest.approx(1e-4 + 1e-3)
    with pytest.raises(ValueError):
        link.transmit_seconds(-1)


def test_channel_delivers_in_order_with_latency():
    env = Environment()
    link = LinkSpec(name="t", latency_s=0.5, bandwidth_bps=1e6)
    ch = Channel(env, link)
    got = []

    def sender(env):
        yield from ch.send("a", nbytes=0)
        yield from ch.send("b", nbytes=0)

    def receiver(env):
        for _ in range(2):
            got.append(((yield ch.recv()), env.now))

    env.process(sender(env))
    env.process(receiver(env))
    env.run()
    assert [m for m, _ in got] == ["a", "b"]
    assert got[0][1] == pytest.approx(0.5)


def test_channel_bandwidth_serializes_transmissions():
    env = Environment()
    link = LinkSpec(name="t", latency_s=0.0, bandwidth_bps=1e6)  # 1 MB/s
    ch = Channel(env, link)
    arrivals = []

    def sender(env):
        yield from ch.send("big1", nbytes=1_000_000)  # 1 s on the wire
        yield from ch.send("big2", nbytes=1_000_000)

    def receiver(env):
        for _ in range(2):
            yield ch.recv()
            arrivals.append(env.now)

    env.process(sender(env))
    env.process(receiver(env))
    env.run()
    assert arrivals == [pytest.approx(1.0), pytest.approx(2.0)]


def test_channel_send_after_close_raises():
    env = Environment()
    ch = Channel(env, AFUNIX_LINK)
    ch.close()

    def sender(env):
        yield from ch.send("x")

    p = env.process(sender(env))
    with pytest.raises(ConnectionError):
        env.run(until=p)


def test_socket_pair_roundtrip():
    env = Environment()
    listener = Listener(env, name="daemon")
    results = {}

    def server(env):
        sock = yield listener.accept()
        msg = yield sock.recv()
        results["server_got"] = msg
        yield from sock.send("pong")

    def client(env):
        sock = connect(env, listener, client_name="app")
        yield from sock.send("ping")
        results["client_got"] = yield sock.recv()

    env.process(server(env))
    env.process(client(env))
    env.run()
    assert results == {"server_got": "ping", "client_got": "pong"}


def test_multiple_connections_accepted_fifo():
    env = Environment()
    listener = Listener(env)
    accepted = []

    def server(env):
        for _ in range(3):
            sock = yield listener.accept()
            accepted.append(sock.peer_name)

    def clients(env):
        for name in ("c1", "c2", "c3"):
            connect(env, listener, client_name=name)
        yield env.timeout(0)

    env.process(server(env))
    env.process(clients(env))
    env.run()
    assert accepted == ["c1", "c2", "c3"]


def test_rpc_call_response_matching():
    env = Environment()
    listener = Listener(env)

    def handler(request):
        if request.method == "add":
            yield env.timeout(0.001)
            return request.args["a"] + request.args["b"]
        raise ValueError(f"unknown method {request.method}")

    def server(env):
        sock = yield listener.accept()
        yield from RpcServer(sock, handler).serve()

    out = {}

    def client(env):
        sock = connect(env, listener)
        rpc = RpcClient(sock)
        out["sum"] = yield from rpc.call("add", a=2, b=3)

    env.process(server(env))
    env.process(client(env))
    env.run(until=env.timeout(1))
    assert out["sum"] == 5


def test_rpc_server_marshals_exceptions():
    env = Environment()
    listener = Listener(env)

    def handler(request):
        yield env.timeout(0)
        raise KeyError("nope")

    def server(env):
        sock = yield listener.accept()
        yield from RpcServer(sock, handler).serve()

    caught = []

    def client(env):
        rpc = RpcClient(connect(env, listener))
        try:
            yield from rpc.call("whatever")
        except KeyError as exc:
            caught.append(str(exc))

    env.process(server(env))
    env.process(client(env))
    env.run(until=env.timeout(1))
    assert caught == ["'nope'"]


def test_tcp_link_slower_than_afunix():
    big = 10_000_000
    assert TCP_10GBE_LINK.transmit_seconds(big) > AFUNIX_LINK.transmit_seconds(big)
    assert TCP_10GBE_LINK.latency_s > AFUNIX_LINK.latency_s


def test_request_wire_bytes_include_header():
    r = Request(method="m", payload_bytes=100)
    assert r.wire_bytes == 164
