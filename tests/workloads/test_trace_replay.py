"""Trace schema, loaders, and the synthetic generator."""

import pytest

from repro.workloads.trace_replay import (
    TRACE_FIELDS,
    TraceJob,
    jain_index,
    load_trace,
    loads_trace,
    percentile,
    save_trace,
    synthetic_trace,
)

MIB = 1024**2


def make_job(**kw):
    base = dict(
        job_id="j1",
        user="alice",
        group="ml",
        submit_time=1.5,
        duration=2.0,
        num_gpus=1,
        gpu_type="V100",
        mem_bytes=64 * MIB,
    )
    base.update(kw)
    return TraceJob(**base)


class TestSchema:
    def test_fields_round_trip(self):
        job = make_job()
        assert tuple(job.to_json()) == TRACE_FIELDS
        assert TraceJob.from_record(job.to_json()) == job

    def test_extra_record_keys_ignored(self):
        record = make_job().to_json()
        record["status"] = "Terminated"
        assert TraceJob.from_record(record) == make_job()

    def test_missing_field_rejected(self):
        record = make_job().to_json()
        del record["duration"]
        with pytest.raises(ValueError, match="duration"):
            TraceJob.from_record(record)

    @pytest.mark.parametrize(
        "kw",
        [
            {"submit_time": -1.0},
            {"duration": 0.0},
            {"num_gpus": 0},
            {"mem_bytes": 0},
            {"gpu_type": "H9000"},
        ],
    )
    def test_invalid_values_rejected(self, kw):
        with pytest.raises((ValueError, KeyError)):
            make_job(**kw)

    def test_gpu_type_case_insensitive(self):
        make_job(gpu_type="v100")
        make_job(gpu_type="t4")


class TestLoadSave:
    def test_csv_round_trip(self, tmp_path):
        jobs = synthetic_trace(20, seed=1)
        path = str(tmp_path / "trace.csv")
        save_trace(jobs, path)
        assert load_trace(path) == jobs

    def test_jsonl_round_trip(self, tmp_path):
        jobs = synthetic_trace(20, seed=1)
        path = str(tmp_path / "trace.jsonl")
        save_trace(jobs, path)
        assert load_trace(path) == jobs

    def test_loads_sorts_by_submit_time(self):
        a = make_job(job_id="a", submit_time=5.0)
        b = make_job(job_id="b", submit_time=1.0)
        text = "\n".join(
            __import__("json").dumps(j.to_json()) for j in (a, b)
        )
        assert [j.job_id for j in loads_trace(text)] == ["b", "a"]

    def test_loads_empty(self):
        assert loads_trace("") == []
        assert loads_trace("   \n  ") == []

    def test_csv_header_sniffed(self):
        job = make_job()
        text = ",".join(TRACE_FIELDS) + "\n" + ",".join(
            str(job.to_json()[f]) for f in TRACE_FIELDS
        )
        assert loads_trace(text) == [job]


class TestSyntheticGenerator:
    def test_deterministic(self):
        assert synthetic_trace(100, seed=9) == synthetic_trace(100, seed=9)

    def test_seed_changes_trace(self):
        assert synthetic_trace(100, seed=1) != synthetic_trace(100, seed=2)

    def test_shape(self):
        jobs = synthetic_trace(300, seed=0)
        assert len(jobs) == 300
        assert all(j.duration > 0 for j in jobs)
        assert all(
            a.submit_time <= b.submit_time for a, b in zip(jobs, jobs[1:])
        )
        # Heterogeneous demands: more than one gpu_type, some multi-GPU.
        assert len({j.gpu_type for j in jobs}) >= 2
        assert any(j.num_gpus > 1 for j in jobs)
        assert all(j.num_gpus in (1, 2, 4) for j in jobs)

    def test_zipf_users(self):
        jobs = synthetic_trace(500, seed=0, users=16)
        counts = {}
        for j in jobs:
            counts[j.user] = counts.get(j.user, 0) + 1
        top = max(counts.values())
        # The most popular user dominates a uniform share by far.
        assert top > 3 * (500 / 16)

    def test_heavy_tail_durations(self):
        jobs = synthetic_trace(800, seed=0)
        durs = sorted(j.duration for j in jobs)
        p50 = durs[len(durs) // 2]
        assert durs[-1] > 5 * p50

    def test_users_keep_group(self):
        jobs = synthetic_trace(400, seed=3)
        seen = {}
        for j in jobs:
            assert seen.setdefault(j.user, j.group) == j.group


class TestMetricsHelpers:
    def test_jain_uniform_is_one(self):
        assert jain_index([2.0, 2.0, 2.0]) == pytest.approx(1.0)

    def test_jain_maximally_unfair(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(1.0)
        assert jain_index([1.0, 1e-9, 1e-9, 1e-9]) == pytest.approx(
            0.25, abs=0.01
        )

    def test_jain_empty(self):
        assert jain_index([]) == 1.0

    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50.0) == 2.0
        assert percentile(values, 99.0) == 4.0
        assert percentile([], 50.0) == 0.0
