"""Application execution tests: the same program runs on the bare CUDA
runtime and on the paper's runtime, with consistent behaviour."""

import pytest

from repro.cluster.node import ComputeNode
from repro.core import RuntimeConfig
from repro.sim import Environment
from repro.simcuda import TESLA_C2050
from repro.workloads import make_job, workload
from repro.workloads.base import Application, BareCudaAdapter
from repro.simcuda.runtime_api import CudaRuntimeAPI


def make_node(env, with_runtime=True, vgpus=4, specs=None):
    cfg = RuntimeConfig(vgpus_per_device=vgpus) if with_runtime else None
    node = ComputeNode(env, "n0", specs or [TESLA_C2050], runtime_config=cfg)
    env.process(node.start())
    return node


@pytest.mark.parametrize("tag", ["HS", "BFS", "MT", "BS-S"])
def test_short_apps_run_on_bare_cuda(tag):
    env = Environment()
    node = make_node(env, with_runtime=False)
    job = make_job(workload(tag), use_runtime=False)
    p = env.process(job.execute(node, submitted_at=0.0))
    env.run(until=p)
    assert job.outcome.ok
    # Runtime ≈ GPU seconds + transfers, inside the short-running window.
    assert 2.5 < job.outcome.execution_time < 8.0


@pytest.mark.parametrize("tag", ["HS", "NW", "SC"])
def test_short_apps_run_through_runtime(tag):
    env = Environment()
    node = make_node(env, with_runtime=True)
    job = make_job(workload(tag), use_runtime=True)
    p = env.process(job.execute(node, submitted_at=0.0))
    env.run(until=p)
    assert job.outcome.ok
    assert node.runtime.stats.kernels_launched == workload(tag).kernel_calls


def test_runtime_overhead_is_modest_for_single_job():
    """Paper §5.3.1: worst-case framework overhead ≈10% on short jobs."""

    def run(use_runtime):
        env = Environment()
        node = make_node(env, with_runtime=use_runtime, vgpus=1)
        job = make_job(workload("SC"), use_runtime=use_runtime)

        def delayed():
            # let vGPU startup finish so overhead excludes boot time
            yield env.timeout(1.0)
            yield from job.execute(node, submitted_at=env.now)

        p = env.process(delayed())
        env.run(until=p)
        return job.outcome.execution_time

    bare = run(False)
    ours = run(True)
    overhead = (ours - bare) / bare
    assert 0 <= overhead < 0.15, f"overhead {overhead:.1%}"


def test_cpu_fraction_stretches_wall_time_not_gpu_time():
    env = Environment()
    node = make_node(env, with_runtime=False)
    spec = workload("MM-L").with_cpu_fraction(1.0)
    job = make_job(spec, use_runtime=False)
    p = env.process(job.execute(node, submitted_at=0.0))
    env.run(until=p)
    t = job.outcome.execution_time
    # ≈ 20 s GPU + 20 s CPU + transfers
    assert t > 38.0
    gpu_busy = node.driver.devices[0].busy_seconds
    assert gpu_busy == pytest.approx(20.0, rel=0.05)


def test_cpu_phases_contend_for_node_cores():
    """CPU phases occupy hardware threads: with CPU-heavy jobs, a
    single-core node is CPU-bound while a multi-core node overlaps the
    jobs' CPU phases."""

    def makespan(cores):
        env = Environment()
        node = ComputeNode(env, "tiny", [TESLA_C2050], cpu_threads=cores)
        spec = workload("MM-L").with_cpu_fraction(4.0)  # 80 s CPU per job
        done = []

        def run_job(i):
            job = make_job(spec, name=f"j{i}", use_runtime=False)
            yield from job.execute(node, submitted_at=0.0)
            done.append(env.now)

        env.process(run_job(0))
        env.process(run_job(1))
        env.run()
        return max(done)

    single = makespan(1)
    multi = makespan(8)
    assert single >= 160  # 2 × 80 s of CPU serialized on one core
    assert multi < single - 30  # cores overlap the CPU phases


def test_job_outcome_records_error():
    env = Environment()
    node = make_node(env, with_runtime=False, specs=[TESLA_C2050])

    from repro.cluster.jobs import Job

    def failing_body(node):
        yield env.timeout(0.1)
        raise RuntimeError("boom")

    job = Job("bad", failing_body)
    p = env.process(job.execute(node, submitted_at=0.0))
    with pytest.raises(RuntimeError):
        env.run(until=p)
    assert not job.outcome.ok
    assert isinstance(job.outcome.error, RuntimeError)


def test_intermediate_d2h_pattern():
    """NW issues intermediate device→host transfers (the app₂ pattern of
    Figure 1: some c_DH transfers are already part of the program)."""
    env = Environment()
    node = make_node(env, with_runtime=True)
    job = make_job(workload("NW"), use_runtime=True)
    p = env.process(job.execute(node, submitted_at=0.0))
    env.run(until=p)
    # 256 kernels, d2h every 64 → 3 intermediate + 1 final
    assert node.runtime.stats.d2h_requests == 4


def test_draw_short_jobs_deterministic():
    from repro.sim import RngStreams
    from repro.workloads import draw_short_jobs

    a = [j.tag for j in draw_short_jobs(RngStreams(7).stream("jobs"), 8)]
    b = [j.tag for j in draw_short_jobs(RngStreams(7).stream("jobs"), 8)]
    assert a == b
    assert len(a) == 8


def test_application_buffers_freed_at_end():
    env = Environment()
    driver_node = make_node(env, with_runtime=False)
    api = BareCudaAdapter(CudaRuntimeAPI(driver_node.driver, owner="x"))
    app = Application(workload("HS"))
    p = env.process(app.run(api))
    env.run(until=p)
    dev = driver_node.driver.devices[0]
    assert dev.free_memory == dev.memory_capacity  # context destroyed too
