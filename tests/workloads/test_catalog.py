"""Table 2 catalog tests: the benchmark inventory matches the paper."""

import pytest

from repro.simcuda.device import TESLA_C2050
from repro.workloads import ALL_WORKLOADS, LONG_RUNNING, SHORT_RUNNING, workload
from repro.workloads.catalog import FINE_GRAINED

GIB = 1024**3

#: (tag, kernel calls) — third column of Table 2.
PAPER_KERNEL_CALLS = {
    "BP": 40,
    "BFS": 24,
    "HS": 1,
    "NW": 256,
    "SP": 1,
    "MT": 816,
    "PR": 801,
    "SC": 3300,
    "BS-S": 256,
    "VA": 1,
    "MM-S": 200,
    "MM-L": 10,
    "BS-L": 256,
}


def test_thirteen_benchmarks():
    # Table 2's thirteen, plus the fine-grained control-plane family
    # (which stays out of the paper's short/long draw pools).
    assert len(ALL_WORKLOADS) == 13 + len(FINE_GRAINED)
    assert len(SHORT_RUNNING) == 10
    assert len(LONG_RUNNING) == 3
    assert not set(FINE_GRAINED) & set(SHORT_RUNNING + LONG_RUNNING)


@pytest.mark.parametrize("spec", FINE_GRAINED, ids=lambda s: s.tag)
def test_fine_grained_kernels_are_tens_of_microseconds(spec):
    per_launch = spec.gpu_seconds_c2050 / spec.kernel_calls
    assert 1e-5 <= per_launch <= 1e-4
    assert spec.kernel_calls >= 1000
    assert 8 * spec.total_bytes < TESLA_C2050.memory_bytes


@pytest.mark.parametrize("tag,calls", sorted(PAPER_KERNEL_CALLS.items()))
def test_kernel_call_counts_match_paper(tag, calls):
    assert workload(tag).kernel_calls == calls


@pytest.mark.parametrize("spec", SHORT_RUNNING, ids=lambda s: s.tag)
def test_short_running_jobs_take_3_to_5_seconds_on_c2050(spec):
    assert 3.0 <= spec.gpu_seconds_c2050 <= 5.0
    assert not spec.long_running


@pytest.mark.parametrize("spec", LONG_RUNNING, ids=lambda s: s.tag)
def test_long_running_jobs_take_tens_of_seconds(spec):
    # 30–90 s window including injected CPU phases (paper §5.2): the pure
    # GPU part is 20 s+; CPU injection stretches it into the window.
    assert spec.gpu_seconds_c2050 >= 20.0
    assert spec.long_running


@pytest.mark.parametrize("spec", SHORT_RUNNING, ids=lambda s: s.tag)
def test_short_running_memory_well_below_capacity(spec):
    """Paper §5.2: short-running apps have memory requirements well below
    GPU capacity — even eight of the largest must share a C2050."""
    assert 8 * spec.total_bytes < TESLA_C2050.memory_bytes


def test_mml_conflicts_at_three_jobs_per_gpu():
    """Paper §5.3.3: MM-L data sizes create conflicting memory
    requirements when more than two jobs map onto the same GPU."""
    mml = workload("MM-L")
    reservations = 4 * TESLA_C2050.context_reservation_bytes  # 4 vGPUs
    usable = TESLA_C2050.memory_bytes - reservations
    assert 2 * mml.total_bytes <= usable
    assert 3 * mml.total_bytes > usable


def test_bsl_single_gpu_sharing_is_conflict_free():
    """Paper Figure 8: at a 100/0 BS-L mix there are zero swaps — four
    BS-L jobs share a C2050 without memory conflicts."""
    bsl = workload("BS-L")
    reservations = 4 * TESLA_C2050.context_reservation_bytes
    usable = TESLA_C2050.memory_bytes - reservations
    assert 4 * bsl.total_bytes <= usable


def test_flops_per_kernel_calibration():
    spec = workload("HS")
    total = spec.flops_per_kernel * spec.kernel_calls
    seconds = total / (TESLA_C2050.effective_gflops * 1e9)
    assert seconds == pytest.approx(spec.gpu_seconds_c2050)


def test_with_cpu_fraction_replaces_only_fraction():
    base = workload("MM-L")
    heavy = base.with_cpu_fraction(2.0)
    assert heavy.cpu_fraction == 2.0
    assert heavy.kernel_calls == base.kernel_calls
    assert base.cpu_fraction == 0.0  # original untouched


def test_unknown_tag_raises():
    with pytest.raises(KeyError):
        workload("NOPE")


def test_spec_validation():
    from repro.workloads.base import WorkloadSpec

    with pytest.raises(ValueError):
        WorkloadSpec("x", "X", "", kernel_calls=0, gpu_seconds_c2050=1, buffer_bytes=(1,))
    with pytest.raises(ValueError):
        WorkloadSpec("x", "X", "", kernel_calls=1, gpu_seconds_c2050=0, buffer_bytes=(1,))
    with pytest.raises(ValueError):
        WorkloadSpec("x", "X", "", kernel_calls=1, gpu_seconds_c2050=1, buffer_bytes=())
