"""Trace record / serialize / replay tests."""

import pytest

from repro.cluster.node import ComputeNode
from repro.core import RuntimeConfig
from repro.sim import Environment
from repro.simcuda import TESLA_C2050
from repro.simcuda.runtime_api import CudaRuntimeAPI
from repro.workloads import workload
from repro.workloads.base import Application, BareCudaAdapter, FrontendAdapter
from repro.workloads.trace import CallTrace, TraceRecorder, replay_trace


def record_app(tag="HS", cpu_fraction=0.0):
    env = Environment()
    node = ComputeNode(env, "rec", [TESLA_C2050])
    spec = workload(tag)
    if cpu_fraction:
        spec = spec.with_cpu_fraction(cpu_fraction)
    app = Application(spec)
    inner = BareCudaAdapter(CudaRuntimeAPI(node.driver, owner="rec"))
    recorder = TraceRecorder(inner, env, name=tag)
    p = env.process(app.run(recorder, cpu_phase=node.cpu_phase))
    env.run(until=p)
    return recorder.trace, env.now


def test_recorder_captures_structure():
    trace, _ = record_app("HS")
    assert trace.kernel_calls == workload("HS").kernel_calls
    ops = [e.op for e in trace.events]
    assert ops.count("malloc") == len(workload("HS").buffer_bytes)
    assert ops.count("free") == len(workload("HS").buffer_bytes)
    assert "h2d" in ops and "d2h" in ops
    assert trace.total_bytes == workload("HS").total_bytes


def test_recorder_captures_cpu_gaps():
    trace, _ = record_app("MM-L", cpu_fraction=1.0)
    gaps = [e for e in trace.events if e.op == "cpu"]
    assert gaps
    total_gap = sum(e.seconds for e in gaps)
    assert total_gap == pytest.approx(20.0, rel=0.05)  # cpu fraction 1 × 20 s GPU


def test_trace_json_roundtrip():
    trace, _ = record_app("BFS")
    text = trace.dumps()
    loaded = CallTrace.loads(text)
    assert loaded.name == trace.name
    assert loaded.buffer_sizes == trace.buffer_sizes
    assert loaded.events == trace.events


def test_replay_reproduces_timing_on_same_substrate():
    trace, recorded_wall = record_app("HS")
    env = Environment()
    node = ComputeNode(env, "rep", [TESLA_C2050])
    api = BareCudaAdapter(CudaRuntimeAPI(node.driver, owner="rep"))
    p = env.process(replay_trace(trace, api, cpu_phase=node.cpu_phase))
    env.run(until=p)
    assert env.now == pytest.approx(recorded_wall, rel=0.02)
    assert node.driver.devices[0].kernels_executed == trace.kernel_calls


def test_replay_through_the_runtime():
    """A trace recorded on the bare runtime replays through the paper's
    runtime — the whole point of API compatibility."""
    trace, _ = record_app("NW")
    env = Environment()
    node = ComputeNode(
        env, "rt", [TESLA_C2050], runtime_config=RuntimeConfig(vgpus_per_device=2)
    )
    env.process(node.start())
    from repro.core import Frontend

    api = FrontendAdapter(Frontend(env, node.runtime.listener, name="replay"))
    p = env.process(replay_trace(trace, api, cpu_phase=node.cpu_phase))
    env.run(until=p)
    env.run()
    assert node.runtime.stats.kernels_launched == trace.kernel_calls
    assert node.runtime.memory.swap.used_bytes == 0  # clean exit


def test_replay_without_cpu_phases_is_faster():
    trace, recorded_wall = record_app("MM-L", cpu_fraction=1.0)
    env = Environment()
    node = ComputeNode(env, "fast", [TESLA_C2050])
    api = BareCudaAdapter(CudaRuntimeAPI(node.driver, owner="fast"))
    p = env.process(replay_trace(trace, api, cpu_phase=None))
    env.run(until=p)
    assert env.now < recorded_wall * 0.7  # the 20 s of CPU gaps dropped
