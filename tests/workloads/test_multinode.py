"""Multi-node (BSP) application tests."""

import pytest

from repro.cluster.node import ComputeNode
from repro.core import RuntimeConfig
from repro.net.channel import TCP_10GBE_LINK
from repro.sim import Environment
from repro.simcuda import TESLA_C2050
from repro.workloads.multinode import (
    ClusterAllReduce,
    ClusterBarrier,
    MultiNodeSpec,
    run_multinode_application,
)

MIB = 1024**2


def build_nodes(env, n, vgpus=2):
    nodes = [
        ComputeNode(env, f"n{i}", [TESLA_C2050],
                    runtime_config=RuntimeConfig(vgpus_per_device=vgpus))
        for i in range(n)
    ]
    for node in nodes:
        env.process(node.start())
    env.run(until=2.0)
    return nodes


# ---------------------------------------------------------------------------
# collectives
# ---------------------------------------------------------------------------

def test_barrier_waits_for_slowest_rank():
    env = Environment()
    barrier = ClusterBarrier(env, ranks=3)
    released = []

    def rank(delay):
        yield env.timeout(delay)
        yield from barrier.wait()
        released.append(env.now)

    for d in (0.1, 0.5, 2.0):
        env.process(rank(d))
    env.run()
    # Everyone leaves together, after the slowest arrival.
    assert max(released) - min(released) < 1e-3
    assert min(released) >= 2.0
    assert barrier.crossings == 1


def test_barrier_reusable_across_iterations():
    env = Environment()
    barrier = ClusterBarrier(env, ranks=2)
    counts = []

    def rank(i):
        for _ in range(5):
            yield from barrier.wait()
        counts.append(i)

    env.process(rank(0))
    env.process(rank(1))
    env.run()
    assert barrier.crossings == 5
    assert sorted(counts) == [0, 1]


def test_allreduce_cost_model():
    env = Environment()
    ar = ClusterAllReduce(env, ranks=4, link=TCP_10GBE_LINK)
    t = ar.reduce_seconds(100 * MIB)
    expected_volume = 2 * 3 / 4 * 100 * MIB
    assert t >= expected_volume / TCP_10GBE_LINK.bandwidth_bps
    # Single rank: free.
    assert ClusterAllReduce(env, ranks=1).reduce_seconds(100 * MIB) == 0.0


def test_collective_validation():
    env = Environment()
    with pytest.raises(ValueError):
        ClusterBarrier(env, ranks=0)
    with pytest.raises(ValueError):
        ClusterAllReduce(env, ranks=0)
    with pytest.raises(ValueError):
        MultiNodeSpec("x", iterations=0, shard_bytes=1, kernel_seconds=1,
                      halo_bytes=0)


# ---------------------------------------------------------------------------
# whole applications
# ---------------------------------------------------------------------------

SOLVER = MultiNodeSpec(
    name="solver",
    iterations=4,
    shard_bytes=128 * MIB,
    kernel_seconds=0.5,
    halo_bytes=8 * MIB,
    cpu_seconds=0.1,
)


def test_multinode_application_completes():
    env = Environment()
    nodes = build_nodes(env, 3)
    p = env.process(run_multinode_application(env, SOLVER, nodes))
    env.run(until=p)
    start, end = p.value
    assert end > start
    # Every node executed exactly the rank's kernels.
    for node in nodes:
        assert node.driver.devices[0].kernels_executed == SOLVER.iterations


def test_ranks_stay_in_lockstep():
    """All ranks finish within one iteration of each other — the barrier
    keeps the BSP structure despite independent node schedules."""
    env = Environment()
    nodes = build_nodes(env, 4)
    p = env.process(run_multinode_application(env, SOLVER, nodes))
    env.run(until=p)
    # kernels_executed identical across nodes at the end
    counts = {n.driver.devices[0].kernels_executed for n in nodes}
    assert counts == {SOLVER.iterations}


def test_multinode_with_co_tenants():
    """A multi-node app shares each node's GPU with a local tenant; the
    lock-step application still completes, slowed but not broken."""
    from repro.workloads import make_job, workload

    env = Environment()
    nodes = build_nodes(env, 2)
    # Local single-node tenants compete on each node's GPU.
    tenants = [make_job(workload("BS-S"), name=f"local{i}") for i in range(2)]
    for tenant, node in zip(tenants, nodes):
        env.process(tenant.execute(node, submitted_at=env.now))
    p = env.process(run_multinode_application(env, SOLVER, nodes))
    env.run(until=p)
    env.run()
    assert all(t.outcome.ok for t in tenants)
    start, end = p.value
    assert end > start


def test_requires_runtime_on_every_node():
    env = Environment()
    good = ComputeNode(env, "good", [TESLA_C2050],
                       runtime_config=RuntimeConfig())
    bare = ComputeNode(env, "bare", [TESLA_C2050])

    def attempt():
        yield from run_multinode_application(env, SOLVER, [good, bare])

    p = env.process(attempt())
    with pytest.raises(ValueError, match="no runtime daemon"):
        env.run(until=p)
