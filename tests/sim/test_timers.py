"""The slot-based timer wheel: many timers, one pending kernel event."""

import pytest

from repro.sim import Environment, SimulationError, TimerWheel


def test_one_shot_fires_at_exact_time():
    env = Environment()
    wheel = TimerWheel(env)
    fired = []
    wheel.call_at(3.25, lambda: fired.append(env.now))
    env.run()
    assert fired == [3.25]


def test_call_after_relative_delay():
    env = Environment()
    wheel = TimerWheel(env)
    fired = []

    def proc():
        yield env.timeout(2)
        wheel.call_after(1.5, lambda: fired.append(env.now))

    env.process(proc())
    env.run()
    assert fired == [3.5]


def test_recurring_ticks_until_cancelled():
    env = Environment()
    wheel = TimerWheel(env)
    ticks = []
    handle = wheel.every(1.0, lambda: ticks.append(env.now))

    def stopper():
        yield env.timeout(3.5)
        handle.cancel()

    env.process(stopper())
    env.run()
    assert ticks == [1.0, 2.0, 3.0]
    assert not handle.active


def test_cancel_is_idempotent_and_o1():
    env = Environment()
    wheel = TimerWheel(env)
    handle = wheel.call_at(5.0, lambda: None)
    handle.cancel()
    handle.cancel()
    env.run()
    assert len(wheel) == 0


def test_many_timers_one_pending_kernel_event():
    """The wheel's whole point: N armed timers cost one heap entry (the
    earliest), not N."""
    env = Environment()
    wheel = TimerWheel(env)
    fired = []
    for i in range(50):
        wheel.call_at(10.0 + i, lambda i=i: fired.append(i))
    live = [e for e in env._queue if not e[3]._cancelled]
    assert len(live) == 1
    env.run()
    assert fired == list(range(50))


def test_earlier_insert_rearms_the_wheel():
    """Arming an earlier deadline cancels the previously armed kernel
    Timeout (event cancellation dogfooded) and still fires both."""
    env = Environment()
    wheel = TimerWheel(env)
    fired = []
    wheel.call_at(10.0, lambda: fired.append("late"))
    armed_before = wheel._armed
    wheel.call_at(2.0, lambda: fired.append("early"))
    assert armed_before.cancelled
    env.run()
    assert fired == ["early", "late"]
    assert env.now == 10.0


def test_same_instant_fires_in_insertion_order():
    env = Environment()
    wheel = TimerWheel(env)
    fired = []
    wheel.call_at(4.0, lambda: fired.append("a"))
    wheel.call_at(4.0, lambda: fired.append("b"))
    wheel.call_at(4.0, lambda: fired.append("c"))
    env.run()
    assert fired == ["a", "b", "c"]


def test_recurring_first_delay_override():
    env = Environment()
    wheel = TimerWheel(env)
    ticks = []
    handle = wheel.every(2.0, lambda: ticks.append(env.now), first=0.5)

    def stopper():
        yield env.timeout(5)
        handle.cancel()

    env.process(stopper())
    env.run()
    assert ticks == [0.5, 2.5, 4.5]


def test_cancel_from_inside_own_tick_stops_recurrence():
    env = Environment()
    wheel = TimerWheel(env)
    ticks = []

    def tick():
        ticks.append(env.now)
        if len(ticks) == 2:
            handle.cancel()

    handle = wheel.every(1.0, tick)
    env.run()
    assert ticks == [1.0, 2.0]


def test_validation():
    env = Environment()
    wheel = TimerWheel(env)
    with pytest.raises(SimulationError):
        wheel.call_after(-1, lambda: None)
    with pytest.raises(SimulationError):
        wheel.every(0, lambda: None)
    with pytest.raises(SimulationError):
        TimerWheel(env, slot_s=0)

    def proc():
        yield env.timeout(5)
        with pytest.raises(SimulationError):
            wheel.call_at(1.0, lambda: None)  # in the past

    env.process(proc())
    env.run()


def test_sub_slot_timers_fire_exactly():
    """Slot granularity is bookkeeping only — timers denser than the
    slot width still fire at their exact requested times."""
    env = Environment()
    wheel = TimerWheel(env, slot_s=10.0)
    fired = []
    for when in (0.25, 0.5, 3.75, 9.99):
        wheel.call_at(when, lambda w=when: fired.append((env.now, w)))
    env.run()
    assert fired == [(w, w) for w in (0.25, 0.5, 3.75, 9.99)]
