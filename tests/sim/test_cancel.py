"""Event-cancellation semantics of the DES kernel.

Cancellation is the PR-7 kernel rework: a pending event can be removed
from the future (``Event.cancel()``), the run loop lazily skips
cancelled entries, and abandoned consumers (interrupts, ``AnyOf``
losers) auto-cancel the events nobody is waiting on anymore — so sync
primitives never see ghost wake-ups.
"""

import pytest

from repro.sim import (
    AllOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)


# ---------------------------------------------------------------------------
# cancel() basics
# ---------------------------------------------------------------------------

def test_cancel_pending_event_never_fires():
    env = Environment()
    ev = Event(env)
    fired = []
    ev.callbacks.append(fired.append)
    ev.cancel()
    assert ev.cancelled
    assert not ev.triggered
    env.run()
    assert fired == []


def test_cancel_is_idempotent():
    env = Environment()
    ev = Event(env)
    ev.cancel()
    ev.cancel()  # no error
    assert ev.cancelled


def test_cancel_after_trigger_raises():
    env = Environment()
    ev = Event(env)
    ev.succeed("v")
    with pytest.raises(SimulationError):
        ev.cancel()


def test_cancel_after_processed_raises():
    env = Environment()
    ev = Event(env)
    ev.succeed("v")
    env.run()
    assert ev.processed
    with pytest.raises(SimulationError):
        ev.cancel()


def test_succeed_on_cancelled_event_raises():
    env = Environment()
    ev = Event(env)
    ev.cancel()
    with pytest.raises(SimulationError):
        ev.succeed()
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError("x"))


def test_cancelled_timeout_does_not_advance_clock():
    env = Environment()
    t = env.timeout(10)
    env.timeout(3)
    t.cancel()
    env.run()
    assert env.now == 3


def test_on_cancel_hook_fires_once():
    env = Environment()
    ev = Event(env)
    calls = []
    ev._on_cancel = calls.append
    ev.cancel()
    ev.cancel()
    assert calls == [ev]


def test_run_until_cancelled_event_raises():
    env = Environment()
    t = env.timeout(5)
    t.cancel()
    with pytest.raises(SimulationError):
        env.run(until=t)


def test_yielding_cancelled_event_crashes_process():
    env = Environment()
    ev = Event(env)
    ev.cancel()

    def proc():
        yield ev

    env.process(proc())
    with pytest.raises(SimulationError):
        env.run()


# ---------------------------------------------------------------------------
# lazy heap deletion
# ---------------------------------------------------------------------------

def test_queue_compaction_under_mass_cancellation():
    """Cancelling many timeouts triggers the heap compaction path and
    the survivors still fire in order at their exact times."""
    env = Environment()
    doomed = [env.timeout(i + 1) for i in range(500)]
    keep_times = [1000.0, 2000.0]
    fired = []
    for when in keep_times:
        t = env.timeout(when)
        t.callbacks.append(lambda ev, w=when: fired.append((env.now, w)))
    for t in doomed:
        t.cancel()
    env.run()
    assert fired == [(1000.0, 1000.0), (2000.0, 2000.0)]
    assert env.now == 2000.0


def test_compaction_mid_run_keeps_the_live_queue():
    """Regression: compaction must rebuild the queue IN PLACE.  The run
    loop holds a direct reference to the list, so a compaction that
    rebinds ``env._queue`` strands every event scheduled afterwards and
    the simulation silently runs dry mid-flight."""
    env = Environment()
    fired = []

    def proc():
        doomed = [env.timeout(50 + i) for i in range(300)]
        yield env.timeout(1)
        for t in doomed:       # mass-cancel inside the run loop
            t.cancel()
        yield env.timeout(1)   # scheduled *after* the compaction
        fired.append(env.now)
        yield env.timeout(3)
        fired.append(env.now)

    env.process(proc())
    env.run()
    assert fired == [2, 5]
    assert env.now == 5


def test_peek_skips_cancelled_events():
    env = Environment()
    early = env.timeout(1)
    env.timeout(5)
    early.cancel()
    assert env.peek() == 5


# ---------------------------------------------------------------------------
# interrupts and auto-cancel
# ---------------------------------------------------------------------------

def test_interrupt_auto_cancels_abandoned_timeout():
    """The timeout a process was sleeping on is cancelled when the
    interrupt diverts the process — it never fires as a ghost."""
    env = Environment()
    state = {}

    def sleeper():
        try:
            yield env.timeout(100)
        except Interrupt:
            state["interrupted_at"] = env.now

    p = env.process(sleeper())

    def interrupter():
        yield env.timeout(1)
        p.interrupt()

    env.process(interrupter())
    env.run()
    assert state["interrupted_at"] == 1
    assert env.now == 1  # the 100 s timeout is gone from the queue


def test_interrupt_racing_target_at_same_timestamp():
    """Interrupt scheduled at the same sim time as the target's own
    wake-up: the URGENT interrupt wins, and the simultaneously-triggered
    target is treated as stale (the process sees exactly one resume)."""
    env = Environment()
    trace = []

    def sleeper():
        try:
            yield env.timeout(5)
            trace.append(("timeout", env.now))
        except Interrupt as i:
            trace.append(("interrupt", env.now, i.cause))
        yield env.timeout(1)
        trace.append(("after", env.now))

    def interrupter():
        yield env.timeout(5)  # same instant the sleeper's timeout fires
        p.interrupt(cause="race")

    # The interrupter is created first so its t=5 wake-up pops first;
    # the URGENT interrupt then preempts the sleeper's own t=5 timeout.
    env.process(interrupter())
    p = env.process(sleeper())
    env.run()
    assert trace == [("interrupt", 5, "race"), ("after", 6)]


def test_anyof_cancels_losing_timeout():
    """The backoff pattern: any_of([timeout, wait]) must cancel the
    loser, so a long timeout does not keep simulated time running."""
    env = Environment()

    def proc():
        short = env.timeout(1, value="short")
        long = env.timeout(1000, value="long")
        result = yield env.any_of([short, long])
        assert list(result.values()) == ["short"]
        assert long.cancelled

    env.process(proc())
    env.run()
    assert env.now == 1  # the 1000 s loser is cancelled, not pending


def test_allof_with_failed_constituent_fails_composite():
    env = Environment()
    boom = RuntimeError("boom")

    def proc():
        ok = env.timeout(1)
        bad = Event(env)
        bad.fail(boom)
        try:
            yield AllOf(env, [ok, bad])
        except RuntimeError as exc:
            assert exc is boom
            return "caught"

    p = env.process(proc())
    assert env.run(until=p) == "caught"


def test_allof_failure_cancels_pending_constituents():
    """When one constituent fails, the composite resolves immediately
    and detaches from the still-pending timeout, auto-cancelling it."""
    env = Environment()

    def proc():
        slow = env.timeout(1000)
        bad = env.event()
        bad.fail(RuntimeError("x"))
        try:
            yield AllOf(env, [slow, bad])
        except RuntimeError:
            pass
        assert slow.cancelled

    env.process(proc())
    env.run()
    assert env.now == 0


def test_plain_events_are_not_auto_cancelled():
    """Plain Events succeed/fail externally (scheduler wake-ups): an
    interrupt that abandons one must leave it usable."""
    env = Environment()
    gate = Event(env)
    trace = []

    def waiter():
        try:
            yield gate
        except Interrupt:
            trace.append("interrupted")

    p = env.process(waiter())

    def driver():
        yield env.timeout(1)
        p.interrupt()
        yield env.timeout(1)
        gate.succeed("still fine")  # must not raise: gate was not cancelled
        trace.append("fired")

    env.process(driver())
    env.run()
    assert trace == ["interrupted", "fired"]
    assert not gate.cancelled


def test_cancelled_timeout_value_is_never_materialized():
    env = Environment()
    t = Timeout(env, 5, value="payload")
    t.cancel()
    env.timeout(10)
    env.run()
    assert not t.triggered
    assert env.now == 10
