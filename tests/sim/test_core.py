"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_initial_time():
    env = Environment(initial_time=7.5)
    assert env.now == 7.5


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(5)
    env.run()
    assert env.now == 5


def test_run_until_numeric_stops_clock_exactly():
    env = Environment()
    env.timeout(10)
    env.run(until=3)
    assert env.now == 3


def test_run_until_past_raises():
    env = Environment()
    env.timeout(5)
    env.run(until=5)
    with pytest.raises(SimulationError):
        env.run(until=2)


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_process_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2)
        return 42

    p = env.process(proc(env))
    env.run()
    assert p.value == 42
    assert env.now == 2


def test_process_receives_timeout_value():
    env = Environment()
    seen = []

    def proc(env):
        v = yield env.timeout(1, value="hello")
        seen.append(v)

    env.process(proc(env))
    env.run()
    assert seen == ["hello"]


def test_processes_interleave_in_time_order():
    env = Environment()
    trace = []

    def proc(env, name, delay):
        yield env.timeout(delay)
        trace.append((env.now, name))

    env.process(proc(env, "b", 2))
    env.process(proc(env, "a", 1))
    env.process(proc(env, "c", 3))
    env.run()
    assert trace == [(1, "a"), (2, "b"), (3, "c")]


def test_fifo_order_for_simultaneous_events():
    env = Environment()
    trace = []

    def proc(env, name):
        yield env.timeout(1)
        trace.append(name)

    for name in "abcde":
        env.process(proc(env, name))
    env.run()
    assert trace == list("abcde")


def test_process_waits_on_another_process():
    env = Environment()

    def child(env):
        yield env.timeout(4)
        return "done"

    def parent(env):
        result = yield env.process(child(env))
        return (env.now, result)

    p = env.process(parent(env))
    env.run()
    assert p.value == (4, "done")


def test_event_succeed_resumes_waiter():
    env = Environment()
    ev = env.event()
    out = []

    def waiter(env):
        out.append((yield ev))

    def firer(env):
        yield env.timeout(2)
        ev.succeed("fired")

    env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert out == ["fired"]


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError())


def test_event_fail_propagates_into_process():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter(env):
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    env.process(waiter(env))
    ev.fail(ValueError("boom"))
    env.run()
    assert caught == ["boom"]


def test_uncaught_process_exception_fails_process_event():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise RuntimeError("oops")

    p = env.process(bad(env))
    with pytest.raises(RuntimeError, match="oops"):
        env.run(until=p)


def test_unhandled_failure_crashes_environment():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise RuntimeError("crash")

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="crash"):
        env.run()


def test_run_until_event_returns_its_value():
    env = Environment()

    def proc(env):
        yield env.timeout(3)
        return "v"

    p = env.process(proc(env))
    assert env.run(until=p) == "v"


def test_yield_already_processed_event_continues_immediately():
    env = Environment()
    out = []

    def proc(env):
        t = env.timeout(0, value="x")
        yield env.timeout(1)
        # t is long processed by now
        v = yield t
        out.append((env.now, v))

    env.process(proc(env))
    env.run()
    assert out == [(1, "x")]


def test_interrupt_delivers_cause():
    env = Environment()
    caught = []

    def victim(env):
        try:
            yield env.timeout(100)
        except Interrupt as i:
            caught.append((env.now, i.cause))

    def attacker(env, victim_proc):
        yield env.timeout(5)
        victim_proc.interrupt(cause="preempt")

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert caught == [(5, "preempt")]


def test_interrupt_dead_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_interrupted_process_can_rewait():
    """After an interrupt the process can yield new events normally."""
    env = Environment()
    trace = []

    def victim(env):
        try:
            yield env.timeout(100)
        except Interrupt:
            trace.append(("interrupted", env.now))
        yield env.timeout(2)
        trace.append(("resumed", env.now))

    def attacker(env, v):
        yield env.timeout(1)
        v.interrupt()

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert trace == [("interrupted", 1), ("resumed", 3)]


def test_self_interrupt_rejected():
    env = Environment()

    def proc(env):
        with pytest.raises(SimulationError):
            env.active_process.interrupt()
        yield env.timeout(1)

    env.process(proc(env))
    env.run()


def test_anyof_fires_on_first():
    env = Environment()

    def proc(env):
        t1 = env.timeout(5, value="slow")
        t2 = env.timeout(2, value="fast")
        result = yield AnyOf(env, [t1, t2])
        return (env.now, list(result.values()))

    p = env.process(proc(env))
    env.run(until=p)
    assert p.value == (2, ["fast"])


def test_allof_waits_for_all():
    env = Environment()

    def proc(env):
        t1 = env.timeout(5, value="a")
        t2 = env.timeout(2, value="b")
        result = yield AllOf(env, [t1, t2])
        return (env.now, sorted(result.values()))

    p = env.process(proc(env))
    env.run(until=p)
    assert p.value == (5, ["a", "b"])


def test_or_and_operators():
    env = Environment()

    def proc(env):
        r1 = yield env.timeout(1, "x") | env.timeout(9, "y")
        r2 = yield env.timeout(1, "p") & env.timeout(2, "q")
        return (list(r1.values()), sorted(r2.values()), env.now)

    p = env.process(proc(env))
    env.run(until=p)
    assert p.value == (["x"], ["p", "q"], 3)


def test_allof_empty_fires_immediately():
    env = Environment()

    def proc(env):
        r = yield AllOf(env, [])
        return (env.now, r)

    p = env.process(proc(env))
    env.run(until=p)
    assert p.value == (0, {})


def test_peek_and_step():
    env = Environment()
    env.timeout(4)
    assert env.peek() == 4
    env.step()
    assert env.now == 4
    assert env.peek() == float("inf")
    with pytest.raises(SimulationError):
        env.step()


def test_yield_non_event_is_error():
    env = Environment()

    def bad(env):
        yield 42

    p = env.process(bad(env))
    with pytest.raises(SimulationError):
        env.run(until=p)


def test_determinism_identical_traces():
    def build_and_run():
        env = Environment()
        trace = []

        def worker(env, name, delays):
            for d in delays:
                yield env.timeout(d)
                trace.append((env.now, name))

        env.process(worker(env, "w1", [1, 1, 1]))
        env.process(worker(env, "w2", [0.5, 1.5, 1]))
        env.process(worker(env, "w3", [3, 0, 0]))
        env.run()
        return trace

    assert build_and_run() == build_and_run()


def test_nested_process_failure_propagates_to_parent():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        raise KeyError("inner")

    def parent(env):
        try:
            yield env.process(child(env))
        except KeyError:
            return "handled"

    p = env.process(parent(env))
    env.run(until=p)
    assert p.value == "handled"


def test_event_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_large_number_of_events_heap_behaviour():
    env = Environment()
    fired = []

    def proc(env, i):
        yield env.timeout(i % 17 + (i % 3) * 0.1)
        fired.append(i)

    for i in range(500):
        env.process(proc(env, i))
    env.run()
    assert len(fired) == 500
    times = sorted((i % 17 + (i % 3) * 0.1, idx) for idx, i in enumerate(fired))
    assert [t for t, _ in times] == sorted(t for t, _ in times)


def test_timeout_exposes_delay():
    env = Environment()
    t = Timeout(env, 2.5)
    assert t.delay == 2.5


def test_process_is_alive_lifecycle():
    env = Environment()

    def proc(env):
        yield env.timeout(1)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_event_repr_states():
    env = Environment()
    ev = env.event()
    assert "pending" in repr(ev)
    ev.succeed()
    assert "triggered" in repr(ev)
    env.run()
    assert "processed" in repr(ev)
