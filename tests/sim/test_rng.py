"""Unit tests for seeded RNG streams."""

from repro.sim import RngStreams


def test_same_seed_same_stream():
    a = RngStreams(seed=1).stream("jobs").random(5).tolist()
    b = RngStreams(seed=1).stream("jobs").random(5).tolist()
    assert a == b


def test_different_seeds_differ():
    a = RngStreams(seed=1).stream("jobs").random(5).tolist()
    b = RngStreams(seed=2).stream("jobs").random(5).tolist()
    assert a != b


def test_named_streams_independent():
    rngs = RngStreams(seed=7)
    jobs_draw = rngs.stream("jobs").random(3).tolist()

    rngs2 = RngStreams(seed=7)
    # Consuming from another stream first must not perturb "jobs".
    rngs2.stream("failures").random(100)
    assert rngs2.stream("jobs").random(3).tolist() == jobs_draw


def test_stream_is_cached():
    rngs = RngStreams(seed=0)
    assert rngs.stream("x") is rngs.stream("x")


def test_spawn_children_deterministic_and_distinct():
    parent = RngStreams(seed=3)
    c1 = parent.spawn("rep0")
    c2 = parent.spawn("rep1")
    again = RngStreams(seed=3).spawn("rep0")
    assert c1.stream("jobs").random(4).tolist() == again.stream("jobs").random(4).tolist()
    assert c1.seed != c2.seed
