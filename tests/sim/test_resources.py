"""Unit tests for simulation resources (Resource, Container, Store)."""

import pytest

from repro.sim import Container, Environment, PriorityResource, Resource, SimulationError, Store


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------

def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    grabbed = []

    def worker(env, name):
        req = res.request()
        yield req
        grabbed.append((env.now, name))
        yield env.timeout(10)
        res.release(req)

    for n in "abc":
        env.process(worker(env, n))
    env.run(until=1)
    assert [n for _, n in grabbed] == ["a", "b"]
    env.run()
    assert [n for _, n in grabbed] == ["a", "b", "c"]
    assert grabbed[2][0] == 10


def test_resource_fifo_ordering():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def worker(env, name):
        with res.request() as req:
            yield req
            order.append(name)
            yield env.timeout(1)

    for n in "abcd":
        env.process(worker(env, n))
    env.run()
    assert order == list("abcd")


def test_resource_context_manager_releases():
    env = Environment()
    res = Resource(env, capacity=1)

    def worker(env):
        with res.request() as req:
            yield req
            yield env.timeout(1)

    env.process(worker(env))
    env.run()
    assert res.count == 0


def test_resource_release_cancels_queued_request():
    env = Environment()
    res = Resource(env, capacity=1)
    held = res.request()  # granted immediately
    assert held.processed or held.triggered
    queued = res.request()
    assert queued in res.queue
    res.release(queued)  # cancel while queued
    assert queued not in res.queue
    res.release(held)
    assert res.count == 0


def test_resource_release_idempotent():
    env = Environment()
    res = Resource(env, capacity=1)
    req = res.request()
    res.release(req)
    res.release(req)  # no error
    assert res.count == 0


def test_resource_zero_capacity_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_priority_resource_orders_by_priority():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def worker(env, name, prio):
        with res.request(priority=prio) as req:
            yield req
            order.append(name)
            yield env.timeout(1)

    def submit(env):
        env.process(worker(env, "low", 10))
        env.process(worker(env, "high", 0))
        env.process(worker(env, "mid", 5))
        yield env.timeout(0)

    env.process(submit(env))
    env.run()
    # "low" is granted first (resource idle at request time); the rest by prio
    assert order == ["low", "high", "mid"]


def test_resource_count_tracks_users():
    env = Environment()
    res = Resource(env, capacity=3)
    reqs = [res.request() for _ in range(3)]
    assert res.count == 3
    for r in reqs:
        res.release(r)
    assert res.count == 0


# ---------------------------------------------------------------------------
# Container
# ---------------------------------------------------------------------------

def test_container_put_get():
    env = Environment()
    c = Container(env, capacity=100, init=50)

    def proc(env):
        yield c.get(30)
        assert c.level == 20
        yield c.put(60)
        assert c.level == 80

    env.process(proc(env))
    env.run()


def test_container_get_blocks_until_available():
    env = Environment()
    c = Container(env, capacity=100, init=0)
    got = []

    def getter(env):
        yield c.get(10)
        got.append(env.now)

    def putter(env):
        yield env.timeout(5)
        yield c.put(10)

    env.process(getter(env))
    env.process(putter(env))
    env.run()
    assert got == [5]


def test_container_put_blocks_when_full():
    env = Environment()
    c = Container(env, capacity=10, init=10)
    done = []

    def putter(env):
        yield c.put(5)
        done.append(env.now)

    def getter(env):
        yield env.timeout(3)
        yield c.get(5)

    env.process(putter(env))
    env.process(getter(env))
    env.run()
    assert done == [3]


def test_container_init_bounds():
    env = Environment()
    with pytest.raises(SimulationError):
        Container(env, capacity=10, init=11)
    with pytest.raises(SimulationError):
        Container(env, capacity=10, init=-1)


def test_container_negative_amount_rejected():
    env = Environment()
    c = Container(env, capacity=10)
    with pytest.raises(SimulationError):
        c.put(-1)
    with pytest.raises(SimulationError):
        c.get(-1)


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------

def test_store_fifo():
    env = Environment()
    s = Store(env)
    out = []

    def producer(env):
        for i in range(3):
            yield s.put(i)
            yield env.timeout(1)

    def consumer(env):
        for _ in range(3):
            item = yield s.get()
            out.append((env.now, item))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert [i for _, i in out] == [0, 1, 2]


def test_store_get_blocks_on_empty():
    env = Environment()
    s = Store(env)
    out = []

    def consumer(env):
        item = yield s.get()
        out.append((env.now, item))

    def producer(env):
        yield env.timeout(7)
        yield s.put("x")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert out == [(7, "x")]


def test_store_capacity_blocks_put():
    env = Environment()
    s = Store(env, capacity=1)
    times = []

    def producer(env):
        yield s.put("a")
        times.append(env.now)
        yield s.put("b")  # blocks until consumer takes "a"
        times.append(env.now)

    def consumer(env):
        yield env.timeout(4)
        yield s.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert times == [0, 4]


def test_store_len():
    env = Environment()
    s = Store(env)
    s.put(1)
    s.put(2)
    assert len(s) == 2
