"""Simulator self-profiling: the SimProfiler hook in Environment.step."""

import pytest

from repro.sim import Environment, SimProfiler


def _burn(env, n, delay=1.0):
    def proc():
        for _ in range(n):
            yield env.timeout(delay)

    return proc()


def test_profiler_counts_every_processed_event():
    env = Environment()
    profiler = SimProfiler()
    profiler.attach(env)
    env.process(_burn(env, 5), name="worker0")
    env.run()
    profiler.detach()
    report = profiler.report()
    assert report["events"] == profiler.events_processed > 0
    assert report["sim_seconds"] == pytest.approx(5.0)
    assert report["wall_seconds"] > 0
    assert report["events_per_second"] > 0
    assert report["sim_seconds_per_wall_second"] > 0


def test_profiler_groups_hotspots_by_process_family():
    env = Environment()
    profiler = SimProfiler()
    profiler.attach(env)
    for i in range(3):
        env.process(_burn(env, 4), name=f"worker{i}")
    env.run()
    profiler.detach()
    report = profiler.report()
    handlers = {h["handler"]: h["events"] for h in report["hotspots"]}
    # workers 0..2 collapse into one "worker" family
    assert handlers.get("worker", 0) >= 12
    assert sum(handlers.values()) == report["events"]


def test_profiler_tracks_queue_depth():
    env = Environment()
    profiler = SimProfiler()
    profiler.attach(env)
    for i in range(10):
        env.process(_burn(env, 1), name=f"p{i}")
    env.run()
    profiler.detach()
    report = profiler.report()
    assert report["queue_depth_peak"] >= 9
    assert 0 <= report["queue_depth_mean"] <= report["queue_depth_peak"]


def test_detach_freezes_the_clock_and_unhooks():
    env = Environment()
    profiler = SimProfiler()
    profiler.attach(env)
    env.process(_burn(env, 2), name="w")
    env.run()
    profiler.detach()
    assert env.profiler is None
    count = profiler.events_processed
    wall = profiler.report()["wall_seconds"]
    env.process(_burn(env, 3), name="w2")
    env.run()
    assert profiler.events_processed == count  # unhooked: nothing counted
    assert profiler.report()["wall_seconds"] == wall


def test_unprofiled_environment_has_no_hook():
    env = Environment()
    assert env.profiler is None
    env.process(_burn(env, 2), name="w")
    env.run()  # no profiler: step() takes the fast path


def test_report_limits_hotspot_rows():
    env = Environment()
    profiler = SimProfiler()
    profiler.attach(env)
    for i in range(30):
        env.process(_burn(env, 1), name=f"kind{i}x{i}")
    env.run()
    profiler.detach()
    assert len(profiler.report(top=5)["hotspots"]) <= 5


def test_reattach_accumulates_instead_of_discarding():
    """Regression: attach() called twice used to reset the wall/sim
    clocks, silently discarding everything measured so far.  A second
    attach now folds the first interval into the running totals."""
    env = Environment()
    profiler = SimProfiler()
    profiler.attach(env)
    env.process(_burn(env, 3), name="w")
    env.run()
    first = profiler.report()
    assert first["sim_seconds"] == pytest.approx(3.0)

    profiler.attach(env)  # second attach: must not discard the 3 s
    env.process(_burn(env, 2), name="w")
    env.run()
    profiler.detach()
    report = profiler.report()
    assert report["sim_seconds"] == pytest.approx(5.0)
    assert report["wall_seconds"] >= first["wall_seconds"]
    assert report["events"] == profiler.events_processed


def test_reattach_to_fresh_environment_keeps_totals():
    env1 = Environment()
    profiler = SimProfiler()
    profiler.attach(env1)
    env1.process(_burn(env1, 4), name="w")
    env1.run()

    env2 = Environment()
    profiler.attach(env2)  # implicitly detaches from env1
    assert env1.profiler is None
    env2.process(_burn(env2, 6), name="w")
    env2.run()
    profiler.detach()
    assert profiler.report()["sim_seconds"] == pytest.approx(10.0)
