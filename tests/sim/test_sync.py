"""Unit tests for simulated synchronization primitives."""

import pytest

from repro.sim import Condition, Environment, FifoQueue, Lock, Semaphore, SimulationError


# ---------------------------------------------------------------------------
# Lock
# ---------------------------------------------------------------------------

def test_lock_mutual_exclusion():
    env = Environment()
    lock = Lock(env)
    inside = []

    def critical(env, name):
        yield lock.acquire()
        try:
            inside.append(name)
            assert len(inside) == 1
            yield env.timeout(1)
        finally:
            inside.remove(name)
            lock.release()

    for n in "abc":
        env.process(critical(env, n))
    env.run()
    assert inside == []
    assert env.now == 3


def test_lock_fifo_handoff():
    env = Environment()
    lock = Lock(env)
    order = []

    def proc(env, name):
        yield lock.acquire()
        order.append(name)
        yield env.timeout(1)
        lock.release()

    for n in "xyz":
        env.process(proc(env, n))
    env.run()
    assert order == list("xyz")


def test_lock_release_unlocked_raises():
    env = Environment()
    lock = Lock(env)
    with pytest.raises(SimulationError):
        lock.release()


def test_lock_locked_property():
    env = Environment()
    lock = Lock(env)
    assert not lock.locked
    lock.acquire()
    assert lock.locked
    lock.release()
    assert not lock.locked


# ---------------------------------------------------------------------------
# Semaphore
# ---------------------------------------------------------------------------

def test_semaphore_counts():
    env = Environment()
    sem = Semaphore(env, value=2)
    entered = []

    def proc(env, name):
        yield sem.acquire()
        entered.append((env.now, name))
        yield env.timeout(5)
        sem.release()

    for n in "abc":
        env.process(proc(env, n))
    env.run()
    assert [n for _, n in entered] == ["a", "b", "c"]
    assert entered[2][0] == 5


def test_semaphore_negative_value_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        Semaphore(env, value=-1)


def test_semaphore_release_without_waiter_increments():
    env = Environment()
    sem = Semaphore(env, value=0)
    sem.release()
    assert sem.value == 1


# ---------------------------------------------------------------------------
# Condition
# ---------------------------------------------------------------------------

def test_condition_notify_wakes_one():
    env = Environment()
    cond = Condition(env)
    woken = []

    def waiter(env, name):
        v = yield cond.wait()
        woken.append((name, v))

    def notifier(env):
        yield env.timeout(1)
        cond.notify("first")
        yield env.timeout(1)
        cond.notify("second")

    env.process(waiter(env, "a"))
    env.process(waiter(env, "b"))
    env.process(notifier(env))
    env.run()
    assert woken == [("a", "first"), ("b", "second")]


def test_condition_notify_all():
    env = Environment()
    cond = Condition(env)
    woken = []

    def waiter(env, name):
        yield cond.wait()
        woken.append(name)

    def notifier(env):
        yield env.timeout(1)
        n = cond.notify_all()
        assert n == 3

    for n in "abc":
        env.process(waiter(env, n))
    env.process(notifier(env))
    env.run()
    assert sorted(woken) == ["a", "b", "c"]


def test_condition_notify_empty_returns_false():
    env = Environment()
    cond = Condition(env)
    assert cond.notify() is False
    assert cond.notify_all() == 0
    assert cond.waiting == 0


# ---------------------------------------------------------------------------
# FifoQueue
# ---------------------------------------------------------------------------

def test_fifoqueue_put_get():
    env = Environment()
    q = FifoQueue(env)
    out = []

    def consumer(env):
        for _ in range(2):
            item = yield q.get()
            out.append((env.now, item))

    def producer(env):
        yield env.timeout(2)
        q.put("a")
        yield env.timeout(2)
        q.put("b")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert out == [(2, "a"), (4, "b")]


def test_fifoqueue_put_front():
    env = Environment()
    q = FifoQueue(env)
    q.put("second")
    q.put_front("first")
    assert q.try_get() == "first"
    assert q.try_get() == "second"
    assert q.try_get() is None


def test_fifoqueue_remove():
    env = Environment()
    q = FifoQueue(env)
    q.put("a")
    q.put("b")
    assert q.remove("a") is True
    assert q.remove("a") is False
    assert len(q) == 1


def test_fifoqueue_waiting_getter_served_directly():
    env = Environment()
    q = FifoQueue(env)
    got = []

    def consumer(env):
        got.append((yield q.get()))

    env.process(consumer(env))
    env.run()  # consumer now blocked
    q.put("direct")
    env.run()
    assert got == ["direct"]
    assert len(q) == 0


def test_fifoqueue_iter_snapshot():
    env = Environment()
    q = FifoQueue(env)
    q.put(1)
    q.put(2)
    assert list(q) == [1, 2]
    assert len(q) == 2  # iteration does not consume


# ---------------------------------------------------------------------------
# ghost wake-ups (PR-7 regression tests)
#
# A process interrupted while queued on a primitive leaves a dead waiter
# behind.  Before event cancellation, notify()/release() consumed the
# wake-up on the ghost: a Condition signal was lost, and a Lock handed
# ownership to a process that would never release it (deadlock).
# ---------------------------------------------------------------------------

def test_condition_notify_skips_interrupted_ghost_waiter():
    """A real waiter queued behind an interrupted one still gets the
    notification (the ghost must not swallow it)."""
    from repro.sim import Interrupt

    env = Environment()
    cond = Condition(env)
    woken = []

    def ghost():
        try:
            yield cond.wait()
            woken.append("ghost")
        except Interrupt:
            pass

    def real():
        v = yield cond.wait()
        woken.append(("real", v))

    g = env.process(ghost())

    def driver():
        yield env.timeout(1)   # both waiters queued, ghost first
        g.interrupt()
        yield env.timeout(1)
        assert cond.notify("signal") is True

    env.process(real())
    env.process(driver())
    env.run()
    assert woken == [("real", "signal")]


def test_condition_notify_all_counts_only_live_waiters():
    from repro.sim import Interrupt

    env = Environment()
    cond = Condition(env)
    woken = []

    def waiter(name):
        try:
            yield cond.wait()
            woken.append(name)
        except Interrupt:
            pass

    procs = [env.process(waiter(n)) for n in "abc"]

    def driver():
        yield env.timeout(1)
        procs[1].interrupt()  # "b" becomes a ghost
        yield env.timeout(1)
        assert cond.notify_all() == 2

    env.process(driver())
    env.run()
    assert sorted(woken) == ["a", "c"]


def test_lock_release_skips_interrupted_acquirer():
    """Regression: interrupting a queued acquirer must not leave the
    lock owned by the dead waiter.  The next queued acquirer gets it."""
    from repro.sim import Interrupt

    env = Environment()
    lock = Lock(env)
    order = []

    def holder():
        yield lock.acquire()
        order.append("holder")
        yield env.timeout(5)
        lock.release()

    def doomed():
        try:
            yield lock.acquire()
            order.append("doomed")  # must never run
            lock.release()
        except Interrupt:
            pass

    def survivor():
        yield lock.acquire()
        order.append("survivor")
        lock.release()

    env.process(holder())
    d = env.process(doomed())
    env.process(survivor())

    def driver():
        yield env.timeout(1)  # doomed and survivor are both queued
        d.interrupt()

    env.process(driver())
    env.run()
    assert order == ["holder", "survivor"]
    assert not lock.locked  # no ownership stranded on the ghost


def test_semaphore_release_skips_interrupted_acquirer():
    from repro.sim import Interrupt

    env = Environment()
    sem = Semaphore(env, value=1)
    order = []

    def holder():
        yield sem.acquire()
        order.append("holder")
        yield env.timeout(5)
        sem.release()

    def doomed():
        try:
            yield sem.acquire()
            order.append("doomed")
        except Interrupt:
            pass

    def survivor():
        yield sem.acquire()
        order.append("survivor")
        sem.release()

    env.process(holder())
    d = env.process(doomed())
    env.process(survivor())

    def driver():
        yield env.timeout(1)
        d.interrupt()

    env.process(driver())
    env.run()
    assert order == ["holder", "survivor"]
    assert sem.value == 1  # the permit was not lost on the ghost


def test_fifoqueue_put_skips_interrupted_getter():
    from repro.sim import Interrupt

    env = Environment()
    q = FifoQueue(env)
    got = []

    def doomed():
        try:
            got.append(("doomed", (yield q.get())))
        except Interrupt:
            pass

    def survivor():
        got.append(("survivor", (yield q.get())))

    d = env.process(doomed())
    env.process(survivor())

    def driver():
        yield env.timeout(1)  # both getters queued, doomed first
        d.interrupt()
        yield env.timeout(1)
        q.put("item")

    env.process(driver())
    env.run()
    assert got == [("survivor", "item")]
    assert len(q) == 0  # delivered, not stranded on the ghost


def test_anyof_losing_wait_leaves_condition_queue():
    """The dispatcher's backoff pattern: any_of([timeout, cond.wait()])
    where the timeout wins must remove the wait from the condition's
    queue — a later notify() goes to a real waiter, not the ghost."""
    env = Environment()
    cond = Condition(env)
    woken = []

    def backoff():
        t = env.timeout(1)
        w = cond.wait()
        yield env.any_of([t, w])
        assert w.cancelled
        assert cond.waiting == 0

    def real():
        yield env.timeout(2)
        woken.append((yield cond.wait()))

    def notifier():
        yield env.timeout(3)
        assert cond.notify("late") is True

    env.process(backoff())
    env.process(real())
    env.process(notifier())
    env.run()
    assert woken == ["late"]
