"""Property-based tests for the simulation primitives."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Container, Environment, Resource, Store


@settings(max_examples=60, deadline=None)
@given(
    items=st.lists(st.integers(), min_size=1, max_size=30),
    capacity=st.one_of(st.none(), st.integers(1, 5)),
)
def test_store_preserves_fifo_order_and_items(items, capacity):
    env = Environment()
    store = Store(env, capacity=capacity)
    received = []

    def producer():
        for item in items:
            yield store.put(item)

    def consumer():
        for _ in items:
            received.append((yield store.get()))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == items


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["put", "get"]), st.integers(1, 20)),
        min_size=1,
        max_size=40,
    )
)
def test_container_level_always_within_bounds(ops):
    env = Environment()
    container = Container(env, capacity=50, init=25)

    def driver():
        for kind, amount in ops:
            ev = container.put(amount) if kind == "put" else container.get(amount)
            # Bounded wait: blocked ops may never complete; don't deadlock
            # the test for them.
            yield env.any_of([ev, env.timeout(1.0)])
            assert 0 <= container.level <= container.capacity

    p = env.process(driver())
    env.run(until=p)
    assert 0 <= container.level <= container.capacity


@settings(max_examples=40, deadline=None)
@given(
    capacity=st.integers(1, 4),
    hold_times=st.lists(st.floats(0.01, 2.0), min_size=2, max_size=12),
)
def test_resource_never_oversubscribed(capacity, hold_times):
    env = Environment()
    resource = Resource(env, capacity=capacity)
    in_use = []
    max_seen = []

    def worker(hold):
        with resource.request() as req:
            yield req
            in_use.append(1)
            max_seen.append(len(in_use))
            yield env.timeout(hold)
            in_use.pop()

    for hold in hold_times:
        env.process(worker(hold))
    env.run()
    assert max(max_seen) <= capacity
    assert resource.count == 0


@settings(max_examples=40, deadline=None)
@given(delays=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=25))
def test_events_fire_in_nondecreasing_time_order(delays):
    env = Environment()
    fire_times = []

    def waiter(d):
        yield env.timeout(d)
        fire_times.append(env.now)

    for d in delays:
        env.process(waiter(d))
    env.run()
    assert fire_times == sorted(fire_times)
    assert len(fire_times) == len(delays)
