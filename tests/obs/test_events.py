"""Tracer and typed-event semantics."""

from types import SimpleNamespace

from repro.obs import (
    Bind,
    CallBegin,
    CallEnd,
    EVENT_TYPES,
    QueueDepthChanged,
    SwapOut,
    Tracer,
    event_to_dict,
)
from repro.sim import Environment


def ctx(owner="app0", vgpu=None):
    return SimpleNamespace(owner=owner, vgpu=vgpu)


def vgpu(name="vGPU0-1", device_id=0):
    return SimpleNamespace(name=name, device=SimpleNamespace(device_id=device_id))


def test_disabled_tracer_records_nothing():
    tracer = Tracer(Environment())
    assert not tracer.enabled
    assert tracer.call_begin(ctx(), "launch_kernel") is None
    tracer.call_end(ctx(), "launch_kernel", begin_at=None)
    tracer.swap_out(ctx(), 1024)
    tracer.swap_in(ctx(), 1024)
    tracer.bind(ctx(), vgpu())
    tracer.unbind(ctx(), vgpu())
    tracer.queue_depth("waiting_contexts", 3)
    tracer.offload("conn", "node1")
    tracer.checkpoint(ctx(), 64)
    tracer.failure_recovered(ctx(), replayed_kernels=2)
    assert tracer.events == []


def test_call_span_emission():
    env = Environment()
    tracer = Tracer(env, enabled=True, node="n0")
    v = vgpu()
    begin_at = tracer.call_begin(ctx(vgpu=v), "launch_kernel")
    assert begin_at == env.now
    tracer.call_end(ctx(vgpu=v), "launch_kernel", begin_at)
    begin, end = tracer.events
    assert isinstance(begin, CallBegin) and isinstance(end, CallEnd)
    assert begin.method == end.method == "launch_kernel"
    assert begin.vgpu == end.vgpu == "vGPU0-1"
    assert end.begin_at == begin_at
    assert end.duration == end.at - begin_at
    assert end.error is None
    assert end.node == "n0"


def test_call_end_without_begin_is_noop():
    """A span started while disabled must not produce a dangling end."""
    tracer = Tracer(Environment(), enabled=True)
    tracer.call_end(ctx(), "launch_kernel", begin_at=None)
    assert tracer.events == []


def test_unbound_context_has_no_location():
    tracer = Tracer(Environment(), enabled=True)
    tracer.swap_out(ctx(vgpu=None), 4096)
    (event,) = tracer.events
    assert isinstance(event, SwapOut)
    assert event.device_id is None and event.vgpu is None
    assert event.nbytes == 4096


def test_events_of_and_clear():
    tracer = Tracer(Environment(), enabled=True)
    tracer.bind(ctx(), vgpu())
    tracer.queue_depth("waiting_contexts", 1)
    tracer.queue_depth("waiting_contexts", 0)
    assert len(tracer.events_of(Bind)) == 1
    assert len(tracer.events_of(QueueDepthChanged)) == 2
    assert len(tracer.events_of(Bind, QueueDepthChanged)) == 3
    tracer.clear()
    assert tracer.events == []


def test_subscribers_see_events_synchronously():
    tracer = Tracer(Environment(), enabled=True)
    seen = []
    tracer.subscribers.append(seen.append)
    tracer.queue_depth("pending_connections", 2)
    assert len(seen) == 1
    assert seen[0] is tracer.events[0]


def test_event_to_dict_folds_kind_in():
    for cls in EVENT_TYPES:
        assert isinstance(cls.kind, str)
    tracer = Tracer(Environment(), enabled=True, node="n0")
    tracer.queue_depth("q", 5)
    d = event_to_dict(tracer.events[0])
    assert d == {"kind": "QueueDepthChanged", "at": 0.0, "queue": "q",
                 "depth": 5, "node": "n0"}


def test_method_enum_is_stringified():
    from repro.core.protocol import CallType

    tracer = Tracer(Environment(), enabled=True)
    begin_at = tracer.call_begin(ctx(), CallType.LAUNCH)
    tracer.call_end(ctx(), CallType.LAUNCH, begin_at)
    assert all(e.method == CallType.LAUNCH.value for e in tracer.events)
