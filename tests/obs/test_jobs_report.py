"""Per-job / per-user JCT reporting (``repro obs report --jobs``)."""

import json

from repro.cli import main
from repro.obs import (
    job_completion,
    load_phase_breakdowns,
    per_user_jct,
    render_jobs_report,
)


def _record(context="job0", tenant="alice", begin_at=0.0, wall=1.0,
            phases=None):
    return {
        "kind": "PhaseBreakdown",
        "at": begin_at + wall,
        "context": context,
        "method": "cudaLaunch",
        "trace_id": 1,
        "span_id": 1,
        "begin_at": begin_at,
        "wall": wall,
        "phases": phases if phases is not None
        else [["exec", wall * 0.75], ["queue_wait", wall * 0.25]],
        "tenant": tenant,
        "error": None,
        "device_id": 0,
        "vgpu": "vgpu0",
        "node": "node0",
    }


class TestJobCompletion:
    def test_jct_spans_first_to_last_call(self):
        records = [
            _record(context="j1", begin_at=0.0, wall=1.0),
            _record(context="j1", begin_at=5.0, wall=2.0),
        ]
        jobs = job_completion(records)
        assert len(jobs) == 1
        assert jobs[0]["jct"] == 7.0
        assert jobs[0]["calls"] == 2

    def test_queue_seconds_summed(self):
        records = [
            _record(context="j1", begin_at=0.0, wall=4.0,
                    phases=[["queue_wait", 1.0], ["bind_wait", 0.5],
                            ["exec", 2.5]]),
        ]
        job = job_completion(records)[0]
        assert job["queue_s"] == 1.5
        assert job["queue_share"] == 1.5 / 4.0

    def test_sorted_slowest_first(self):
        records = [
            _record(context="fast", begin_at=0.0, wall=1.0),
            _record(context="slow", begin_at=0.0, wall=9.0),
        ]
        assert [j["job"] for j in job_completion(records)] == ["slow", "fast"]


class TestPerUserJct:
    def test_aggregates_by_tenant(self):
        records = [
            _record(context="j1", tenant="alice", wall=1.0),
            _record(context="j2", tenant="alice", wall=3.0),
            _record(context="j3", tenant="bob", wall=2.0),
        ]
        users = per_user_jct(job_completion(records))
        assert users["alice"]["jobs"] == 2
        assert users["alice"]["mean_jct"] == 2.0
        assert users["alice"]["p50_jct"] == 1.0
        assert users["bob"]["jobs"] == 1

    def test_render_contains_tables(self):
        records = [_record(context="j1"), _record(context="j2", tenant="bob")]
        text = render_jobs_report(records)
        assert "per-user JCT" in text
        assert "slowest jobs" in text
        assert "alice" in text and "bob" in text


class TestCli:
    def test_obs_report_jobs_flag(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        path.write_text(
            "\n".join(json.dumps(_record(context=f"j{i}")) for i in range(3))
        )
        assert main(["obs", "report", "--jobs", str(path)]) == 0
        out = capsys.readouterr().out
        assert "per-user JCT" in out
        assert "alice" in out

    def test_round_trip_via_loader(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(json.dumps(_record()) + "\nnot json\n")
        with open(path) as fh:
            records = load_phase_breakdowns(fh)
        assert len(records) == 1
        assert job_completion(records)[0]["tenant"] == "alice"
