"""Metrics registry semantics and RuntimeStats schema stability."""

import math

import pytest

from repro.core.stats import RuntimeStats
from repro.obs import (
    BYTES_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

#: The exported RuntimeStats schema.  Downstream consumers (figure
#: benches, node_report()["metrics"], the Prometheus exporter) key on
#: these names; renaming or dropping one is a breaking change that must
#: show up here.
EXPECTED_STATS_KEYS = {
    "connections_accepted",
    "calls_served",
    "kernels_launched",
    "swaps_intra",
    "swaps_inter",
    "swaps_total",
    "swap_bytes_out",
    "swap_bytes_in",
    "swap_retries",
    "evictions_partial",
    "eviction_bytes_freed",
    "eviction_writeback_bytes",
    "migrations",
    "migrations_p2p",
    "p2p_bytes",
    "offloads_out",
    "offloads_in",
    "failures_recovered",
    "replayed_kernels",
    "checkpoints",
    "h2d_requests",
    "h2d_device_transfers",
    "d2h_requests",
    "prefetch_issued",
    "prefetch_hits",
    "prefetch_bytes",
    "bad_calls_detected",
    "bindings",
    "unbindings",
    "admission_rejects",
    "admission_queued",
    "preemptions",
    "quota_evictions",
    "quota_eviction_bytes",
    "locality_hits",
    "locality_bytes_avoided",
    "locality_reclaims",
    "locality_reclaim_bytes",
    "batches_submitted",
    "batched_calls",
    "graphs_instantiated",
    "graph_replays",
    "graph_replayed_kernels",
    "graphs_invalidated",
}


def test_runtime_stats_as_dict_key_stability():
    d = RuntimeStats().as_dict()
    assert set(d) == EXPECTED_STATS_KEYS
    assert all(v == 0 for v in d.values())


def test_runtime_stats_swaps_total_is_derived():
    stats = RuntimeStats(swaps_intra=3, swaps_inter=4)
    assert stats.as_dict()["swaps_total"] == 7


def test_counter_monotonic():
    c = Counter("x")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_set_and_callback():
    g = Gauge("x")
    g.set(5)
    g.dec(2)
    assert g.value == 3
    backing = {"v": 7}
    live = Gauge("y", fn=lambda: backing["v"])
    assert live.value == 7
    backing["v"] = 9
    assert live.value == 9
    with pytest.raises(ValueError):
        live.set(1)


def test_histogram_le_binning():
    h = Histogram("x", buckets=(1.0, 10.0))
    for v in (0.5, 1.0, 5.0, 10.0, 11.0):
        h.observe(v)
    # le semantics: a value equal to a bound lands in that bucket.
    assert h.counts == [2, 2, 1]
    assert h.count == 5
    assert h.sum == pytest.approx(27.5)
    cumulative = h.cumulative()
    assert cumulative == [(1.0, 2), (10.0, 4), (math.inf, 5)]
    snap = h.snapshot()
    assert snap["count"] == 5
    assert snap["buckets"]["inf"] == 5


def test_histogram_bucket_validation():
    with pytest.raises(ValueError):
        Histogram("x", buckets=())
    with pytest.raises(ValueError):
        Histogram("x", buckets=(1.0, math.inf))
    # duplicated/unsorted bounds are normalized
    h = Histogram("x", buckets=(5.0, 1.0, 5.0))
    assert h.bounds == (1.0, 5.0)


def test_registry_get_or_create():
    reg = MetricsRegistry(node="n0")
    c1 = reg.counter("net_messages_total")
    c2 = reg.counter("net_messages_total")
    assert c1 is c2
    h1 = reg.histogram("swap_bytes", buckets=BYTES_BUCKETS)
    assert reg.histogram("swap_bytes") is h1
    with pytest.raises(ValueError):
        reg.gauge("net_messages_total")
    assert reg.get("missing") is None
    assert set(m.name for m in reg.metrics()) == {"net_messages_total", "swap_bytes"}


def test_registry_snapshot_folds_stats_and_metrics():
    reg = MetricsRegistry(node="n0")
    stats = RuntimeStats(calls_served=5)
    reg.attach_stats(stats)
    reg.counter("custom_total").inc(2)
    reg.gauge("depth", fn=lambda: 4)
    reg.histogram("lat").observe(0.5)
    snap = reg.snapshot()
    assert snap["runtime_calls_served"] == 5
    assert snap["custom_total"] == 2
    assert snap["depth"] == 4
    assert snap["lat"]["count"] == 1
    # stats are live, not copied at attach time
    stats.calls_served = 6
    assert reg.snapshot()["runtime_calls_served"] == 6
