"""Tracing must never perturb simulated time.

The instrumentation emits events from the host side of the simulation;
it costs wall-clock only.  These tests pin that down: the same batch run
with tracing off and with tracing on reports *identical* simulated
times, and a default (tracing-off) runtime records zero events.
"""

from repro.cli import _parse_jobs
from repro.core.config import RuntimeConfig
from repro.experiments.harness import run_node_batch
from repro.obs import ObsCollector
from repro.simcuda.device import TESLA_C2050
from repro.workloads import make_job
from repro.workloads.catalog import SHORT_RUNNING

from tests.core.conftest import Harness


def short_jobs(n=8):
    """A fig5-sized batch: n short-running jobs on one C2050."""
    return [
        make_job(spec, name=f"{spec.tag}#{i}", use_runtime=True)
        for i, spec in enumerate(SHORT_RUNNING[:n])
    ]


def test_fig5_sized_run_times_unchanged_by_tracing():
    off = run_node_batch(
        short_jobs(), [TESLA_C2050],
        RuntimeConfig(vgpus_per_device=4), label="off",
    )
    collector = ObsCollector()
    on = run_node_batch(
        short_jobs(), [TESLA_C2050],
        RuntimeConfig(vgpus_per_device=4, tracing=True), label="on",
        collector=collector,
    )
    assert on.total_time == off.total_time
    assert sorted(on.job_times) == sorted(off.job_times)
    assert on.stats == off.stats
    assert collector.events  # the traced run did record something


def test_cli_default_mix_times_unchanged_by_tracing():
    """The acceptance run (`repro-sim run --vgpus 4 --jobs 8`) with and
    without tracing: identical simulated total time."""
    def run(tracing):
        collector = ObsCollector() if tracing else None
        result = run_node_batch(
            _parse_jobs(["8"], 0.0), [TESLA_C2050],
            RuntimeConfig(vgpus_per_device=4, tracing=tracing),
            collector=collector,
        )
        return result, collector

    off, _ = run(False)
    on, collector = run(True)
    assert on.total_time == off.total_time
    assert sorted(on.job_times) == sorted(off.job_times)
    assert collector.events


def test_disabled_runtime_records_no_events():
    h = Harness()
    assert h.runtime.obs.enabled is False
    h.spawn(h.simple_app("app", kernel_seconds=0.5))
    h.run()
    assert h.runtime.obs.events == []
    # metrics stay live even without tracing (pull-based, host-side only)
    snap = h.runtime.metrics.snapshot()
    assert snap["runtime_calls_served"] > 0
    assert snap["call_latency_seconds"]["count"] > 0
