"""Per-tenant SLO monitoring: windowed percentiles, burn rates, and the
node_report / Prometheus surfaces."""

import pytest

from repro.core import Frontend, RuntimeConfig
from repro.core.monitor import node_report
from repro.obs import SLOMonitor, percentile
from repro.sim import Environment

from tests.core.conftest import Harness


class _Cfg:
    slo_window_s = 10.0
    slo_turnaround_p99_s = 1.0
    slo_queue_wait_p99_s = 0.5
    slo_error_budget = 0.1


class _Ctx:
    def __init__(self, tenant=None):
        self.tenant = tenant


class _Tenant:
    def __init__(self, name):
        self.name = name


# ----------------------------------------------------------------------
# percentile helper
# ----------------------------------------------------------------------
def test_percentile_interpolates():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 4.0
    assert percentile(values, 50) == pytest.approx(2.5)
    assert percentile([7.0], 99) == 7.0
    assert percentile([], 50) == 0.0


# ----------------------------------------------------------------------
# monitor mechanics
# ----------------------------------------------------------------------
def test_rollup_reports_percentiles_and_burn_rate():
    env = Environment()
    mon = SLOMonitor(env, _Cfg())
    ctx = _Ctx(_Tenant("acme"))
    for latency in (0.1, 0.2, 0.3, 2.0):  # one breach of the 1.0 s target
        mon.observe_call(ctx, latency)
    mon.observe_queue_wait(ctx, 0.2)
    roll = mon.rollup()
    assert set(roll) == {"acme"}
    acme = roll["acme"]
    assert acme["calls_in_window"] == 4
    assert acme["turnaround_p50_s"] == pytest.approx(0.25)
    assert acme["turnaround_p99_s"] == pytest.approx(2.0, rel=0.05)
    # 1 of 4 breaching / 0.1 budget = 2.5
    assert acme["turnaround_burn_rate"] == pytest.approx(2.5)
    assert mon.burn_rate("acme", "turnaround") == pytest.approx(2.5)
    assert mon.burn_rate("acme", "queue_wait") == 0.0


def test_window_prunes_old_samples():
    env = Environment()
    mon = SLOMonitor(env, _Cfg())
    ctx = _Ctx(_Tenant("t"))

    def driver():
        mon.observe_call(ctx, 5.0)  # breach at t=0
        yield env.timeout(20.0)  # > slo_window_s
        mon.observe_call(ctx, 0.1)

    env.process(driver())
    env.run()
    roll = mon.rollup()["t"]
    assert roll["calls_total"] == 2
    assert roll["calls_in_window"] == 1
    assert roll["turnaround_burn_rate"] == 0.0  # the breach aged out


def test_unset_targets_read_zero_burn():
    class NoTargets:
        slo_window_s = 10.0
        slo_turnaround_p99_s = None
        slo_queue_wait_p99_s = None
        slo_error_budget = 0.01

    env = Environment()
    mon = SLOMonitor(env, NoTargets())
    mon.observe_call(_Ctx(_Tenant("t")), 100.0)
    assert mon.burn_rate("t", "turnaround") == 0.0


def test_tenantless_calls_key_under_dash():
    env = Environment()
    mon = SLOMonitor(env, _Cfg())
    mon.observe_call(_Ctx(None), 0.1)
    assert "-" in mon.rollup()


def test_config_validates_slo_fields():
    with pytest.raises(ValueError):
        RuntimeConfig(slo_window_s=0.0)
    with pytest.raises(ValueError):
        RuntimeConfig(slo_error_budget=0.0)
    with pytest.raises(ValueError):
        RuntimeConfig(slo_error_budget=1.5)


# ----------------------------------------------------------------------
# runtime integration
# ----------------------------------------------------------------------
def _run_tenant_app(h, tenant="acme"):
    def app():
        fe = Frontend(h.env, h.runtime.listener, name="app0", tenant=tenant)
        yield from fe.open()
        ptr = yield from fe.cuda_malloc(1024)
        yield from fe.cuda_memcpy_h2d(ptr, 1024)
        yield from fe.cuda_free(ptr)
        yield from fe.cuda_thread_exit()

    h.spawn(app())
    h.run()


def test_node_report_carries_slo_rollup():
    h = Harness(config=RuntimeConfig(slo_turnaround_p99_s=10.0))
    _run_tenant_app(h)
    report = node_report(h.runtime)
    assert "acme" in report["slo"]
    acme = report["slo"]["acme"]
    assert acme["calls_in_window"] > 0
    assert acme["turnaround_p99_s"] >= 0.0
    assert acme["turnaround_target_s"] == 10.0


def test_burn_rate_gauges_exported_per_tenant():
    h = Harness(config=RuntimeConfig(slo_turnaround_p99_s=1e-9,
                                     slo_error_budget=0.5))
    _run_tenant_app(h)
    from repro.obs import prometheus_text

    text = prometheus_text(h.runtime.metrics)
    assert "tenant_turnaround_burn_rate_acme" in text
    assert "tenant_queue_wait_burn_rate_acme" in text
    assert "tenant_swap_out_bytes_acme" in text
    assert "tenant_swap_in_bytes_acme" in text
    # every call breaches the 1 ns target: burn = 1.0 / 0.5 budget
    assert h.runtime.slo.burn_rate("acme", "turnaround") == pytest.approx(2.0)


def test_tenant_rollup_reports_swap_traffic_totals():
    h = Harness(config=RuntimeConfig(vgpus_per_device=1))
    _run_tenant_app(h)
    roll = h.runtime.qos.rollup(h.runtime.memory.page_table)
    assert roll["acme"]["swap_bytes_out_total"] >= 0
    assert roll["acme"]["swap_bytes_in_total"] >= 0
