"""End-to-end acceptance: `repro-sim run --vgpus 4 --jobs 8 --trace-out ...`
produces a valid Chrome trace and Prometheus metrics."""

import json

from repro.cli import main


def run_cli(tmp_path):
    trace_path = tmp_path / "t.json"
    metrics_path = tmp_path / "m.txt"
    rc = main([
        "run", "--vgpus", "4", "--jobs", "8",
        "--trace-out", str(trace_path),
        "--metrics-out", str(metrics_path),
    ])
    assert rc == 0
    return trace_path, metrics_path


def test_cli_trace_validates_against_trace_event_schema(tmp_path):
    trace_path, metrics_path = run_cli(tmp_path)
    data = json.loads(trace_path.read_text())
    assert data["displayTimeUnit"] == "ms"
    events = data["traceEvents"]
    assert events
    for e in events:
        assert e["ph"] in ("X", "i", "M")
        assert isinstance(e["name"], str) and isinstance(e["pid"], int)
        if e["ph"] == "X":
            assert e["ts"] >= 0 and e["dur"] >= 0
            assert isinstance(e["tid"], int)
        elif e["ph"] == "i":
            assert e["s"] == "t" and e["ts"] >= 0

    # One trace-viewer "process" per device plus the host pseudo-process.
    process_names = {
        e["pid"]: e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    gpu_pids = [p for p, n in process_names.items() if "/GPU" in n]
    assert len(gpu_pids) == 1  # single C2050

    # CallBegin/CallEnd spans appear on every one of the 4 vGPU rows;
    # the device's copy/exec engine-occupancy rows sit beside them.
    (gpu_pid,) = gpu_pids
    span_tids = {
        e["tid"] for e in events if e["ph"] == "X" and e["pid"] == gpu_pid
    }
    thread_names = {
        (e["pid"], e["tid"]): e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    vgpu_tids = {t for t in span_tids if "vGPU" in thread_names[(gpu_pid, t)]}
    engine_tids = {t for t in span_tids if "engine" in thread_names[(gpu_pid, t)]}
    assert len(vgpu_tids) == 4
    assert vgpu_tids | engine_tids == span_tids
    # The default mix launches kernels and moves memory, so both engines
    # must have occupancy spans.
    engine_names = {thread_names[(gpu_pid, t)] for t in engine_tids}
    assert engine_names == {"exec-engine", "copy-engine"}

    # The memory-heavy default mix oversubscribes the device: swap-in
    # instants must be present (and binding churn with them).
    instants = {e["name"] for e in events if e["ph"] == "i"}
    assert {"SwapIn", "Bind", "Unbind"} <= instants
    # In this mix every kernel argument the application reads back is a
    # read-only buffer, so no device→host write-back ever happens: a
    # SwapOut instant here would be the phantom clean-entry emission the
    # accounting unification removed.  The trace must agree with the
    # counter.
    swap_out_events = [e for e in events if e["ph"] == "i" and e["name"] == "SwapOut"]
    assert not swap_out_events
    assert 'runtime_swap_bytes_out{node="node0-rt"} 0' in metrics_path.read_text()


def test_cli_metrics_file_has_histograms_and_stats(tmp_path):
    _, metrics_path = run_cli(tmp_path)
    text = metrics_path.read_text()
    assert "# TYPE call_latency_seconds histogram" in text
    assert "# TYPE swap_out_bytes histogram" in text
    assert 'call_latency_seconds_bucket{node="node0-rt",le="+Inf"}' in text
    assert 'runtime_calls_served{node="node0-rt"}' in text
    assert 'vgpus_total{node="node0-rt"} 4' in text
