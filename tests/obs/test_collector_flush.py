"""ObsCollector shutdown guarantees: context-manager and atexit flushing,
idempotence, and the plain path-less collector staying inert."""

import atexit
import json

from repro.core import RuntimeConfig
from repro.obs import ObsCollector

from tests.core.conftest import Harness


def _traced_run(collector):
    h = Harness(config=RuntimeConfig(tracing=False))
    collector.attach(h.runtime)
    assert h.runtime.obs.enabled  # attach flips tracing on
    h.spawn(h.simple_app("app0", kernel_seconds=0.2))
    h.run()
    return h


def test_context_manager_flushes_all_outputs(tmp_path):
    trace = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.txt"
    events = tmp_path / "events.jsonl"
    with ObsCollector(trace_path=str(trace), metrics_path=str(metrics),
                      events_path=str(events)) as collector:
        _traced_run(collector)
    payload = json.loads(trace.read_text())
    assert payload["traceEvents"]
    assert "runtime_calls_served" in metrics.read_text()
    lines = [json.loads(l) for l in events.read_text().splitlines()]
    assert any(rec["kind"] == "PhaseBreakdown" for rec in lines)


def test_flush_is_idempotent(tmp_path):
    events = tmp_path / "events.jsonl"
    collector = ObsCollector(events_path=str(events))
    _traced_run(collector)
    collector.flush()
    first = events.read_text()
    events.write_text("clobbered")
    collector.flush()  # second flush must not rewrite
    assert events.read_text() == "clobbered"
    assert first


def test_flush_on_exception_inside_context(tmp_path):
    events = tmp_path / "events.jsonl"
    try:
        with ObsCollector(events_path=str(events)) as collector:
            _traced_run(collector)
            raise RuntimeError("mid-run crash")
    except RuntimeError:
        pass
    assert events.exists() and events.read_text()


def test_atexit_guard_registered_only_with_paths(tmp_path):
    plain = ObsCollector()
    assert not plain._atexit_registered
    guarded = ObsCollector(events_path=str(tmp_path / "e.jsonl"))
    assert guarded._atexit_registered
    guarded.flush()
    assert not guarded._atexit_registered  # unregistered after clean flush


def test_atexit_flush_swallows_write_errors(tmp_path):
    collector = ObsCollector(events_path=str(tmp_path / "no" / "dir" / "e.jsonl"))
    _traced_run(collector)
    collector._atexit_flush()  # must not raise despite the bad path
    atexit.unregister(collector._atexit_flush)


def test_pathless_collector_writes_on_demand(tmp_path):
    collector = ObsCollector()
    _traced_run(collector)
    collector.flush()  # no-op: no paths configured
    out = tmp_path / "t.json"
    collector.write_trace(str(out))
    assert json.loads(out.read_text())["traceEvents"]
