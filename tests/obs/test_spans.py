"""Causal span propagation: CallSpan mechanics and the phase-sum
invariant — every completed call's PhaseBreakdown phases sum to its wall
time, under the plain runtime and under overlap + chunked swapping +
preemption."""

import pytest

from repro.core import Frontend, RuntimeConfig
from repro.obs import CallBegin, CallEnd, CallSpan, PHASES, PhaseBreakdown
from repro.sim import Environment

from tests.core.conftest import Harness, MIB

#: Simulated-time slack for the phase-sum invariant (one "tick" — times
#: are floats, so this is pure rounding headroom).
TICK = 1e-9


def traced(**config_kwargs):
    specs = config_kwargs.pop("specs", None)
    return Harness(specs=specs, config=RuntimeConfig(tracing=True, **config_kwargs))


# ----------------------------------------------------------------------
# CallSpan unit behavior
# ----------------------------------------------------------------------
def test_span_settles_elapsed_time_to_top_phase():
    env = Environment()

    def driver():
        span = CallSpan(env)
        span.push("queue_wait")
        yield env.timeout(2.0)
        span.pop()
        span.push("exec")
        yield env.timeout(3.0)
        span.pop()
        yield env.timeout(1.0)  # no phase pushed -> "other"
        phases = span.finish()
        assert phases == {"queue_wait": 2.0, "exec": 3.0, "other": 1.0}
        assert sum(phases.values()) == pytest.approx(span.wall)

    env.process(driver())
    env.run()


def test_span_credits_request_wire_time_to_rpc():
    env = Environment()

    def driver():
        yield env.timeout(5.0)
        # begin_at in the past (the client stamped sent_at=3.0): the
        # wire leg is credited to "rpc" up front.
        span = CallSpan(env, begin_at=3.0)
        yield env.timeout(1.0)
        phases = span.finish()
        assert phases["rpc"] == pytest.approx(2.0)
        assert sum(phases.values()) == pytest.approx(span.wall) == pytest.approx(3.0)

    env.process(driver())
    env.run()


def test_span_nested_phases_attribute_to_innermost():
    env = Environment()

    def driver():
        span = CallSpan(env)
        span.push("exec")
        yield env.timeout(1.0)
        span.push("fault_in")  # nested: inner phase wins while pushed
        yield env.timeout(2.0)
        span.pop()
        yield env.timeout(1.0)
        span.pop()
        phases = span.finish()
        assert phases == {"exec": 2.0, "fault_in": 2.0}

    env.process(driver())
    env.run()


def test_span_ids_are_unique():
    env = Environment()
    a, b = CallSpan(env), CallSpan(env)
    assert a.trace_id != b.trace_id


# ----------------------------------------------------------------------
# the invariant, end to end
# ----------------------------------------------------------------------
def _assert_breakdowns_consistent(obs):
    ends = obs.events_of(CallEnd)
    breakdowns = obs.events_of(PhaseBreakdown)
    assert len(breakdowns) == len(ends) > 0
    for pb in breakdowns:
        assert pb.phases, f"empty phase list for {pb.method} of {pb.context}"
        total = sum(dt for _, dt in pb.phases)
        assert total == pytest.approx(pb.wall, abs=TICK), (
            f"{pb.context} {pb.method}: phases sum {total} != wall {pb.wall}"
        )
        assert pb.wall == pytest.approx(pb.at - pb.begin_at, abs=TICK)
        assert all(name in PHASES for name, _ in pb.phases)
        assert pb.trace_id is not None and pb.span_id is not None
    # spans of one connection share the client's trace id
    by_context = {}
    for pb in breakdowns:
        by_context.setdefault(pb.context, set()).add(pb.trace_id)
    assert all(len(ids) == 1 for ids in by_context.values())


def test_phase_sum_equals_wall_time_plain_runtime():
    h = traced(vgpus_per_device=4)
    for i in range(3):
        h.spawn(h.simple_app(f"app{i}", kernel_seconds=0.3, kernel_count=2))
    h.run()
    _assert_breakdowns_consistent(h.runtime.obs)


def test_phase_sum_under_overcommit_swap_and_contention():
    """Two memory hogs on one vGPU: queue wait, fault-in, eviction stalls
    and the unbind-retry path all appear, and the invariant holds."""
    h = traced(vgpus_per_device=1)
    for i in range(2):
        h.spawn(h.simple_app(f"big{i}", alloc_mib=1600, kernel_seconds=0.4,
                             kernel_count=3, cpu_phase_s=0.2))
    h.run()
    obs = h.runtime.obs
    _assert_breakdowns_consistent(obs)
    seen = {name for pb in obs.events_of(PhaseBreakdown) for name, _ in pb.phases}
    assert "exec" in seen and "bind_wait" in seen and "fault_in" in seen


def test_phase_sum_under_overlap_chunking_and_preemption():
    """The hard mode: pipelined copy streams, chunked demand paging and
    quantum preemption together."""
    h = traced(
        vgpus_per_device=2,
        overlap_transfers=True,
        swap_chunk_bytes=64 * MIB,
        vgpu_quantum_s=0.25,
    )
    for i in range(3):
        h.spawn(h.simple_app(f"hog{i}", alloc_mib=1500, kernel_seconds=0.4,
                             kernel_count=4, cpu_phase_s=0.1))
    h.run()
    _assert_breakdowns_consistent(h.runtime.obs)


def test_phase_sum_holds_under_batching():
    """Satellite invariant: with calls completing inside a batch, the
    reply's wire leg is credited once per batch (to the tail call) and
    every call's phases still sum to its wall time."""
    h = traced(batch_max_calls=8, launch_control_plane_s=40e-6)

    def app(name):
        def body():
            fe = h.frontend(name, batch_max_calls=8)
            yield from fe.open()
            from repro.simcuda import FatBinary, KernelDescriptor, TESLA_C2050

            kernel = KernelDescriptor(
                name=f"{name}-k", flops=0.05 * TESLA_C2050.effective_gflops * 1e9
            )
            handle = yield from fe.register_fat_binary(FatBinary())
            yield from fe.register_function(handle, kernel)
            ptr = yield from fe.cuda_malloc(16 * MIB)
            yield from fe.cuda_memcpy_h2d(ptr, 16 * MIB)
            for _ in range(10):
                yield from fe.launch_kernel(kernel, [ptr])
            yield from fe.cuda_memcpy_d2h(ptr, 16 * MIB)
            yield from fe.cuda_thread_exit()

        return body()

    for i in range(2):
        h.spawn(app(f"bapp{i}"))
    h.run()
    obs = h.runtime.obs
    assert h.runtime.stats.batches_submitted > 0
    _assert_breakdowns_consistent(obs)
    seen = {name for pb in obs.events_of(PhaseBreakdown) for name, _ in pb.phases}
    # journaled calls show client-side batch-queue time
    assert "batch_queue" in seen
    # the reply wire leg appears once per batch: exactly the tail spans
    # (plus every plain-path call) carry "rpc"
    from repro.obs import BatchSubmit

    batches = obs.events_of(BatchSubmit)
    batched_pbs = [
        pb for pb in obs.events_of(PhaseBreakdown)
        if any(n == "batch_queue" for n, _ in pb.phases)
    ]
    with_rpc = [
        pb for pb in batched_pbs if any(n == "rpc" and dt > 0 for n, dt in pb.phases)
    ]
    assert len(batches) > 0 and len(batched_pbs) > 0
    # wire legs are charged per *batch*, not per call: only the first
    # call (request leg) and the tail call (reply leg) of each frame may
    # carry rpc time — middle calls never do
    assert len(with_rpc) <= 2 * len(batches) < len(batched_pbs) + 2 * len(batches)
    assert len(with_rpc) < len(batched_pbs)


def test_graph_replay_phase_and_events_appear():
    h = traced(graph_replay_enabled=True, launch_control_plane_s=40e-6)

    def app():
        fe = h.frontend("gapp")
        yield from fe.open()
        from repro.simcuda import FatBinary, KernelDescriptor, TESLA_C2050

        kernel = KernelDescriptor(
            name="g-k", flops=0.05 * TESLA_C2050.effective_gflops * 1e9
        )
        handle = yield from fe.register_fat_binary(FatBinary())
        yield from fe.register_function(handle, kernel)
        ptr = yield from fe.cuda_malloc(8 * MIB)
        yield from fe.cuda_memcpy_h2d(ptr, 8 * MIB)
        yield from fe.graph_begin_capture()
        for _ in range(3):
            yield from fe.launch_kernel(kernel, [ptr])
        graph = yield from fe.graph_end_capture()
        yield from fe.graph_launch(graph)
        yield from fe.graph_launch(graph)
        yield from fe.cuda_thread_exit()

    h.spawn(app())
    h.run()
    obs = h.runtime.obs
    _assert_breakdowns_consistent(obs)
    from repro.obs import GraphInstantiate, GraphReplay

    inst = obs.events_of(GraphInstantiate)
    replays = obs.events_of(GraphReplay)
    assert len(inst) == 1 and inst[0].explicit and inst[0].kernels == 3
    assert len(replays) == 2 and all(r.kernels == 3 for r in replays)
    graph_pbs = [
        pb for pb in obs.events_of(PhaseBreakdown)
        if pb.method == "reproGraphLaunch"
    ]
    assert len(graph_pbs) == 2
    # the hot replay pays one control-plane charge, attributed to the
    # "graph_replay" phase (the cold first replay pays per-launch inside
    # "exec", so only the hot one shows the phase)
    assert any(
        n == "graph_replay" and dt > 0 for pb in graph_pbs for n, dt in pb.phases
    )
    assert all(any(n == "exec" for n, _ in pb.phases) for pb in graph_pbs)


def test_call_events_carry_tenant_label():
    h = traced(vgpus_per_device=2)

    def app():
        fe = Frontend(h.env, h.runtime.listener, name="tapp", tenant="acme")
        yield from fe.open()
        yield from fe.cuda_thread_exit()

    h.spawn(app())
    h.run()
    obs = h.runtime.obs
    for cls in (CallBegin, CallEnd, PhaseBreakdown):
        events = [e for e in obs.events_of(cls) if e.context == "tapp"]
        assert events
        # the handshake itself runs before the tenant is known; every
        # call after it carries the label
        assert all(e.tenant == "acme" for e in events[1:])


def test_frontend_exposes_trace_id():
    h = traced()
    captured = {}

    def app():
        fe = h.frontend("app0")
        assert fe.trace_id is None
        yield from fe.open()
        captured["trace_id"] = fe.trace_id
        yield from fe.cuda_thread_exit()

    h.spawn(app())
    h.run()
    assert captured["trace_id"] is not None
    breakdowns = h.runtime.obs.events_of(PhaseBreakdown)
    assert {pb.trace_id for pb in breakdowns} == {captured["trace_id"]}


def test_tracing_off_leaves_no_spans():
    h = Harness(config=RuntimeConfig())
    h.spawn(h.simple_app("app0", kernel_seconds=0.2))
    h.run()
    assert h.runtime.obs.events == []
