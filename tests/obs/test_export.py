"""Exporter round-trips: Chrome trace JSON, Prometheus text, JSON lines."""

import json
import re

from repro.core.stats import RuntimeStats
from repro.obs import (
    Bind,
    CallEnd,
    Migration,
    MetricsRegistry,
    QueueDepthChanged,
    SwapOut,
    chrome_trace,
    event_to_dict,
    json_lines,
    prometheus_text,
    write_chrome_trace,
)

EVENTS = [
    Bind(at=1.0, context="app0", vgpu="vGPU0-1", device_id=0, node="n0"),
    CallEnd(at=2.0, context="app0", method="cudaLaunch", begin_at=1.5,
            duration=0.5, device_id=0, vgpu="vGPU0-1", node="n0"),
    SwapOut(at=2.5, context="app0", nbytes=4096, device_id=0,
            vgpu="vGPU0-1", node="n0"),
    Migration(at=3.0, context="app0", src_device=0, dst_device=1, node="n0"),
    QueueDepthChanged(at=3.5, queue="waiting_contexts", depth=2, node="n0"),
]


def test_chrome_trace_structure():
    trace = chrome_trace(EVENTS)
    assert trace["displayTimeUnit"] == "ms"
    events = trace["traceEvents"]
    spans = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    meta = [e for e in events if e["ph"] == "M"]
    assert len(spans) == 1
    span = spans[0]
    assert span["name"] == "cudaLaunch"
    assert span["ts"] == 1.5e6 and span["dur"] == 0.5e6  # seconds → µs
    assert {e["name"] for e in instants} == {
        "Bind", "SwapOut", "Migration", "QueueDepthChanged"
    }
    assert all(e["s"] == "t" for e in instants)
    # args never leak redundant fields or nulls
    for e in spans + instants:
        assert not {"at", "kind", "node"} & set(e["args"])
        assert None not in e["args"].values()
    names = {e["args"]["name"] for e in meta if e["name"] == "process_name"}
    assert names == {"n0/GPU0", "n0/runtime"}


def test_chrome_trace_rows_stable():
    """Events on the same (node, device, vGPU) share one pid/tid row."""
    trace = chrome_trace(EVENTS)
    rows = {
        (e["pid"], e["tid"])
        for e in trace["traceEvents"]
        if e["ph"] in ("X", "i") and e["args"].get("vgpu") == "vGPU0-1"
    }
    assert len(rows) == 1


def test_chrome_trace_file_is_valid_json(tmp_path):
    path = tmp_path / "trace.json"
    write_chrome_trace(str(path), EVENTS)
    data = json.loads(path.read_text())
    assert data["traceEvents"]


def test_json_lines_round_trip():
    text = json_lines(EVENTS)
    lines = text.strip().split("\n")
    assert len(lines) == len(EVENTS)
    decoded = [json.loads(line) for line in lines]
    assert decoded == [event_to_dict(e) for e in EVENTS]


PROM_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?\d+(\.\d+)?([eE]-?\d+)?|\+Inf)$"
)


def test_prometheus_text_format():
    reg = MetricsRegistry(node="n0")
    reg.attach_stats(RuntimeStats(calls_served=3))
    reg.counter("net_messages_total", "messages").inc(7)
    h = reg.histogram("call_latency_seconds", "latency", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    text = prometheus_text(reg)
    lines = text.strip().split("\n")
    for line in lines:
        assert line.startswith("#") or PROM_LINE.match(line), line
    assert "# TYPE call_latency_seconds histogram" in lines
    assert 'call_latency_seconds_bucket{node="n0",le="0.1"} 1' in lines
    assert 'call_latency_seconds_bucket{node="n0",le="1"} 2' in lines
    assert 'call_latency_seconds_bucket{node="n0",le="+Inf"} 3' in lines
    assert 'call_latency_seconds_count{node="n0"} 3' in lines
    assert 'runtime_calls_served{node="n0"} 3' in lines
    assert 'net_messages_total{node="n0"} 7' in lines


def test_prometheus_merges_nodes_with_one_header():
    regs = []
    for node in ("n0", "n1"):
        reg = MetricsRegistry(node=node)
        reg.counter("net_messages_total").inc(1)
        regs.append(reg)
    text = prometheus_text(*regs)
    assert text.count("# TYPE net_messages_total counter") == 1
    assert 'net_messages_total{node="n0"} 1' in text
    assert 'net_messages_total{node="n1"} 1' in text
