"""End-to-end event emission from the instrumented runtime paths."""

from repro.core import RuntimeConfig
from repro.obs import (
    Bind,
    CallEnd,
    Migration,
    QueueDepthChanged,
    SwapIn,
    SwapOut,
    Unbind,
    chrome_trace,
)
from repro.simcuda import QUADRO_2000, TESLA_C2050

from tests.core.conftest import Harness, MIB


def traced_harness(**config_kwargs):
    specs = config_kwargs.pop("specs", None)
    h = Harness(specs=specs, config=RuntimeConfig(tracing=True, **config_kwargs))
    assert h.runtime.obs.enabled
    return h


def test_call_spans_and_binding_events():
    h = traced_harness(vgpus_per_device=4)
    h.spawn(h.simple_app("app0", kernel_seconds=0.5))
    h.run()
    obs = h.runtime.obs
    ends = obs.events_of(CallEnd)
    assert len(ends) == h.stats.calls_served
    launches = [e for e in ends if e.method == "cudaLaunch"]
    assert launches and all(e.duration > 0 and e.vgpu for e in launches)
    binds = obs.events_of(Bind)
    unbinds = obs.events_of(Unbind)
    assert len(binds) == h.stats.bindings
    assert len(unbinds) == h.stats.unbindings
    assert unbinds[-1].reason == "exit"
    # the trace exporter accepts the real event stream
    trace = chrome_trace(obs.events)
    assert any(e["ph"] == "X" for e in trace["traceEvents"])


def test_swap_events_carry_bytes():
    """Two memory-hungry tenants on one GPU force inter-app swapping."""
    h = traced_harness(vgpus_per_device=2)
    for i in range(2):
        h.spawn(h.simple_app(f"big{i}", alloc_mib=1600, kernel_seconds=0.5,
                             kernel_count=3, cpu_phase_s=0.3))
    h.run()
    obs = h.runtime.obs
    outs = obs.events_of(SwapOut)
    ins = obs.events_of(SwapIn)
    assert outs and ins
    assert sum(e.nbytes for e in outs) == h.stats.swap_bytes_out
    assert sum(e.nbytes for e in ins) == h.stats.swap_bytes_in
    # swap histograms observed the same traffic
    assert h.runtime.metrics.get("swap_out_bytes").count == len(outs)
    assert h.runtime.metrics.get("swap_in_bytes").count == len(ins)


def test_migration_event_emitted():
    h = traced_harness(
        specs=[TESLA_C2050, QUADRO_2000],
        vgpus_per_device=1,
        migration_enabled=True,
        migration_min_speedup=1.2,
    )

    def phased(name, kernels, kernel_s, cpu_s):
        def app():
            fe = h.frontend(name)
            yield from fe.open()
            from repro.simcuda import KernelDescriptor

            k = KernelDescriptor(
                name=f"{name}-k",
                flops=kernel_s * TESLA_C2050.effective_gflops * 1e9,
            )
            a = yield from fe.cuda_malloc(32 * MIB)
            yield from fe.cuda_memcpy_h2d(a, 32 * MIB)
            for _ in range(kernels):
                yield from fe.launch_kernel(k, [a])
                yield h.env.timeout(cpu_s)
            yield from fe.cuda_thread_exit()

        return app()

    h.spawn(phased("short", kernels=2, kernel_s=0.3, cpu_s=0.1))
    h.spawn(phased("long", kernels=8, kernel_s=0.5, cpu_s=0.5))
    h.run()
    migrations = h.runtime.obs.events_of(Migration)
    assert len(migrations) == h.stats.migrations >= 1
    m = migrations[0]
    assert m.context == "long"
    assert m.src_device != m.dst_device
    # migration unbinds carry their reason
    reasons = {e.reason for e in h.runtime.obs.events_of(Unbind)}
    assert "migration" in reasons


def test_queue_depth_events_track_waiting_contexts():
    h = traced_harness(vgpus_per_device=1)
    for i in range(3):
        h.spawn(h.simple_app(f"app{i}", kernel_seconds=0.5))
    h.run()
    depths = [
        e.depth
        for e in h.runtime.obs.events_of(QueueDepthChanged)
        if e.queue == "waiting_contexts"
    ]
    assert depths and max(depths) >= 1 and depths[-1] == 0
    waits = h.runtime.metrics.get("queue_wait_seconds")
    assert waits.count >= h.stats.bindings
