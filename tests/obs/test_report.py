"""The trace analyzer: loading, aggregation, critical path, and the
``repro obs report`` CLI end to end."""

import json

import pytest

from repro.cli import main
from repro.obs import (
    aggregate_phases,
    critical_path,
    load_phase_breakdowns,
    render_report,
)


def _record(context="app0", tenant="acme", wall=2.0, phases=None, begin_at=0.0):
    return {
        "kind": "PhaseBreakdown",
        "at": begin_at + wall,
        "context": context,
        "method": "cudaLaunch",
        "trace_id": 1,
        "span_id": 1,
        "begin_at": begin_at,
        "wall": wall,
        "phases": phases if phases is not None
        else [["exec", wall / 2], ["queue_wait", wall / 2]],
        "tenant": tenant,
        "error": None,
        "device_id": 0,
        "vgpu": "vgpu0",
        "node": "node0",
    }


def _jsonl(records):
    return [json.dumps(r) for r in records]


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------
def test_load_skips_other_kinds_and_junk():
    lines = _jsonl([_record()]) + [
        json.dumps({"kind": "CallEnd", "at": 1.0}),
        "not json at all {",
        "",
    ]
    records = load_phase_breakdowns(lines)
    assert len(records) == 1
    assert records[0]["context"] == "app0"


# ----------------------------------------------------------------------
# aggregation
# ----------------------------------------------------------------------
def test_aggregate_by_tenant_sums_and_attributes():
    records = [
        _record(tenant="a", wall=4.0, phases=[["exec", 3.0], ["fault_in", 1.0]]),
        _record(tenant="a", wall=2.0, phases=[["exec", 2.0]]),
        _record(tenant="b", wall=1.0, phases=[["other", 1.0]]),
    ]
    groups = aggregate_phases(records, "tenant")
    assert groups["a"]["calls"] == 2
    assert groups["a"]["wall"] == pytest.approx(6.0)
    assert groups["a"]["phases"]["exec"] == pytest.approx(5.0)
    assert groups["a"]["named_fraction"] == pytest.approx(1.0)
    assert groups["b"]["named_fraction"] == pytest.approx(0.0)


def test_aggregate_keys_missing_tenant_under_dash():
    groups = aggregate_phases([_record(tenant="")], "tenant")
    assert list(groups) == ["-"]


def test_critical_path_orders_by_wall_and_finds_dominant():
    records = [
        _record(context="fast", wall=1.0, phases=[["exec", 1.0]]),
        _record(context="slow", wall=9.0,
                phases=[["eviction_stall", 7.0], ["exec", 2.0]]),
    ]
    crit = critical_path(records, top=1)
    assert len(crit) == 1
    assert crit[0]["context"] == "slow"
    assert crit[0]["dominant_phase"] == "eviction_stall"


# ----------------------------------------------------------------------
# rendering + CLI
# ----------------------------------------------------------------------
def test_render_report_contains_all_sections():
    text = render_report([_record()])
    assert "per-tenant bottleneck attribution" in text
    assert "per-context bottleneck attribution" in text
    assert "critical path" in text
    assert "acme" in text and "app0" in text
    assert "100.0% attributed to named phases" in text


def test_obs_report_cli_roundtrip(tmp_path, capsys):
    trace = tmp_path / "events.jsonl"
    trace.write_text("\n".join(_jsonl([_record(), _record(context="app1")])) + "\n")
    rc = main(["obs", "report", str(trace), "--top", "1"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "2 calls" in out
    assert "critical path: 1 slowest calls" in out


def test_obs_report_cli_missing_file(tmp_path, capsys):
    rc = main(["obs", "report", str(tmp_path / "nope.jsonl")])
    assert rc == 2
    assert "cannot read" in capsys.readouterr().err


def test_obs_report_cli_no_breakdowns(tmp_path, capsys):
    trace = tmp_path / "events.jsonl"
    trace.write_text(json.dumps({"kind": "CallEnd", "at": 1.0}) + "\n")
    rc = main(["obs", "report", str(trace)])
    assert rc == 1
    assert "no PhaseBreakdown events" in capsys.readouterr().err


def test_traced_cli_run_attributes_95_percent(tmp_path, capsys):
    """The acceptance claim end to end: a canonical overcommit mix run
    through the real CLI yields >= 95% named-phase attribution."""
    trace = tmp_path / "events.jsonl"
    rc = main(["run", "--jobs", "4", "--vgpus", "2",
               "--events-out", str(trace)])
    capsys.readouterr()
    assert rc == 0
    with open(trace) as fh:
        records = load_phase_breakdowns(fh)
    assert records
    for name, group in aggregate_phases(records, "tenant").items():
        assert group["named_fraction"] >= 0.95, (
            f"tenant {name}: only {group['named_fraction']:.1%} attributed"
        )
    rc = main(["obs", "report", str(trace)])
    assert rc == 0
    assert "attributed to named phases" in capsys.readouterr().out
