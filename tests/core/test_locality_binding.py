"""Locality-aware dynamic binding (§4.4): transfer-cost model, retained
residency caches, cost-gated migration, and the ``locality`` policy."""

from types import SimpleNamespace

import pytest

from repro.core import RuntimeConfig
from repro.core.memory.costmodel import TransferCostModel
from repro.core.memory.eviction import CostAwareEviction
from repro.core.policies import LocalityPolicy, make_policy
from repro.simcuda import FatBinary, GPUSpec, KernelDescriptor, TESLA_C2050
from repro.simcuda import timing

from tests.core.conftest import Harness, MIB

SMALL_GPU = GPUSpec(
    name="LocGPU", sm_count=14, cores_per_sm=32, clock_ghz=1.15,
    memory_bytes=512 * MIB,
)


# ---------------------------------------------------------------------------
# cost-model units (pure fakes: no simulation)
# ---------------------------------------------------------------------------

def _fake_device(device_id, gflops=1000.0, free=4096 * MIB):
    return SimpleNamespace(
        device_id=device_id,
        failed=False,
        spec=SimpleNamespace(effective_gflops=gflops, pcie_gbps=5.0),
        allocator=SimpleNamespace(free_bytes=free),
    )


def _fake_vgpu(device, index=0):
    return SimpleNamespace(
        device=device, index=index, name=f"gpu{device.device_id}-vgpu{index}"
    )


def _fake_entry(size, device_id=None, fault=0, dirty=0):
    return SimpleNamespace(
        size=size,
        is_allocated=device_id is not None,
        device_id=device_id,
        virtual_ptr=0x1000,
        fault_bytes=lambda: fault,
        dirty_bytes=lambda: dirty,
        valid_bytes=lambda: size - fault if device_id is not None else 0,
    )


def _model(entries, ctx, migration_penalty_s=0.02):
    config = RuntimeConfig(migration_penalty_s=migration_penalty_s)
    page_table = SimpleNamespace(
        entries_for=lambda c: entries, contexts=lambda: [ctx]
    )
    swap = SimpleNamespace(host_memcpy_bps=8e9)
    scheduler = SimpleNamespace(active_per_device=lambda: {})
    return TransferCostModel(config, page_table, swap, scheduler)


def test_bind_cost_prefers_device_holding_the_cache():
    dev0, dev1 = _fake_device(0), _fake_device(1)
    v0, v1 = _fake_vgpu(dev0), _fake_vgpu(dev1)
    ctx = SimpleNamespace(
        last_launch_vptrs=[], cache_vgpu=v0, vgpu=None,
        estimated_gpu_seconds=None, gpu_seconds_used=0.0,
    )
    entries = [_fake_entry(64 * MIB, device_id=0)]
    model = _model(entries, ctx)
    cost_home = model.bind_cost(ctx, v0)
    cost_away = model.bind_cost(ctx, v1)
    assert cost_home == 0.0  # fully resident, no queue, on affinity
    # Away: full fault-in over min(PCIe, swap) bandwidth + hysteresis.
    expected = (
        timing.COPY_LATENCY_SECONDS + 64 * MIB / 5e9 + 0.02
    )
    assert cost_away == pytest.approx(expected)


def test_bind_cost_ignores_residency_owned_by_another_vgpu():
    """Resident bytes cached on vGPU X cannot be revived by binding to
    vGPU Y of the *same* device: the pointers belong to X's context."""
    dev0 = _fake_device(0)
    v0a, v0b = _fake_vgpu(dev0, 0), _fake_vgpu(dev0, 1)
    ctx = SimpleNamespace(
        last_launch_vptrs=[], cache_vgpu=v0a, vgpu=None,
        estimated_gpu_seconds=None, gpu_seconds_used=0.0,
    )
    model = _model([_fake_entry(64 * MIB, device_id=0)], ctx)
    assert model.bind_cost(ctx, v0a) == 0.0
    assert model.bind_cost(ctx, v0b) > 0.0


def test_bind_cost_charges_queue_wait_from_ewma():
    dev0, dev1 = _fake_device(0), _fake_device(1)
    v0, v1 = _fake_vgpu(dev0), _fake_vgpu(dev1)
    ctx = SimpleNamespace(
        last_launch_vptrs=[], cache_vgpu=None, vgpu=None,
        estimated_gpu_seconds=None, gpu_seconds_used=0.0,
    )
    model = _model([], ctx)
    model.observe_kernel(100e9)  # 0.1 s on a 1000-GFLOPS device
    busy = {0: 3}
    idle = {}
    cost_busy = model.bind_cost(ctx, v0, busy)
    cost_idle = model.bind_cost(ctx, v1, idle)
    assert cost_busy == pytest.approx(4 * 0.1)
    assert cost_idle == pytest.approx(1 * 0.1)


def test_ewma_converges_toward_recent_kernels():
    model = _model([], SimpleNamespace())
    model.observe_kernel(100e9)
    assert model._ewma_flops == 100e9
    for _ in range(50):
        model.observe_kernel(200e9)
    assert model._ewma_flops == pytest.approx(200e9, rel=1e-3)
    model.observe_kernel(0)  # ignored
    assert model._ewma_flops == pytest.approx(200e9, rel=1e-3)


def test_migration_gate_weighs_gain_against_transfer_cost():
    slow = _fake_device(0, gflops=100.0)
    fast = _fake_device(1, gflops=1000.0)
    barely = _fake_device(2, gflops=101.0)
    ctx = SimpleNamespace(
        last_launch_vptrs=[], cache_vgpu=None, vgpu=_fake_vgpu(slow),
        estimated_gpu_seconds=10.0, gpu_seconds_used=0.0,
    )
    entries = [_fake_entry(512 * MIB, device_id=0, dirty=256 * MIB)]
    model = _model(entries, ctx)
    # 10 s of work: ~9 s saved on the 10x device, far above the move cost.
    assert model.migration_worthwhile(ctx, fast)
    # ~0.1 s saved on the 1.01x device does not pay for moving 512 MiB.
    assert not model.migration_worthwhile(ctx, barely)
    # Unbound contexts have nothing to move.
    ctx.vgpu = None
    assert model.migration_worthwhile(ctx, barely)


def test_evict_cost_discounts_stale_clean_entries():
    dev0 = _fake_device(0)
    ctx = SimpleNamespace(vgpu=_fake_vgpu(dev0), cache_vgpu=None)
    model = _model([], ctx)
    clean = SimpleNamespace(
        dirty_bytes=lambda: 0, valid_bytes=lambda: 64 * MIB, last_use=0.0
    )
    dirty = SimpleNamespace(
        dirty_bytes=lambda: 64 * MIB, valid_bytes=lambda: 64 * MIB, last_use=0.0
    )
    # Dirty entries always cost more (write-back now + re-fault later).
    assert model.evict_cost(ctx, dirty, now=1.0) > model.evict_cost(
        ctx, clean, now=1.0
    )
    # The re-fault leg decays with staleness: an old clean entry is
    # cheaper to evict than a hot one.
    assert model.evict_cost(ctx, clean, now=100.0) < model.evict_cost(
        ctx, clean, now=0.0
    )


def test_cost_aware_eviction_uses_wired_cost_fn():
    policy = CostAwareEviction()
    cheap = ("ctx-a", SimpleNamespace(seq=1, modeled=0.1))
    costly = ("ctx-b", SimpleNamespace(seq=0, modeled=9.0))
    policy.cost_fn = lambda ctx, pte: pte.modeled
    assert policy.order([costly, cheap]) == [cheap, costly]
    # Unwired: falls back to dirty-fraction / LRU ordering.
    policy.cost_fn = None
    clean = ("a", SimpleNamespace(seq=0, size=10, dirty_bytes=lambda: 10, last_use=0.0))
    full = ("b", SimpleNamespace(seq=1, size=10, dirty_bytes=lambda: 0, last_use=5.0))
    assert policy.order([clean, full]) == [full, clean]


# ---------------------------------------------------------------------------
# locality policy: ordering + starvation guard (unit level)
# ---------------------------------------------------------------------------

def _waiter(context_id):
    return SimpleNamespace(context_id=context_id, locality_skips=0)


def test_locality_policy_unwired_degrades_to_fcfs():
    policy = make_policy("locality")
    assert isinstance(policy, LocalityPolicy)
    a, b = _waiter(1), _waiter(2)
    assert policy.pick_next([a, b]) is a
    assert policy.pick_next([]) is None


def test_locality_policy_prefers_cheapest_waiter():
    policy = LocalityPolicy()
    dev0 = _fake_device(0)
    v0 = _fake_vgpu(dev0)
    costs = {1: 5.0, 2: 0.5}
    policy.cost_model = SimpleNamespace(
        scheduler=SimpleNamespace(active_per_device=lambda: {}),
        bind_cost=lambda ctx, v, active: costs[ctx.context_id],
    )
    policy.idle_vgpus_fn = lambda: [v0]
    a, b = _waiter(1), _waiter(2)
    assert policy.pick_next([a, b]) is b
    # No idle vGPU to score against: FCFS.
    policy.idle_vgpus_fn = lambda: []
    assert policy.pick_next([a, b]) is a


def test_locality_policy_never_starves_the_front_waiter():
    """Regression (satellite): a stream of better-locality youngsters
    must not pass over the oldest waiter indefinitely."""
    policy = LocalityPolicy()
    dev0 = _fake_device(0)
    v0 = _fake_vgpu(dev0)
    old = _waiter(1)
    policy.cost_model = SimpleNamespace(
        scheduler=SimpleNamespace(active_per_device=lambda: {}),
        # Every younger waiter always models cheaper than the old one.
        bind_cost=lambda ctx, v, active: 0.0 if ctx.context_id != 1 else 9.0,
    )
    policy.idle_vgpus_fn = lambda: [v0]
    served = []
    next_id = 2
    waiting = [old, _waiter(next_id)]
    for _round in range(2 * policy.max_skips + 2):
        chosen = policy.pick_next(list(waiting))
        served.append(chosen)
        waiting.remove(chosen)
        if chosen is old:
            break
        next_id += 1
        waiting.append(_waiter(next_id))  # fresh better-locality arrival
    assert old in served
    # Served within max_skips pass-overs, and the counter reset after.
    assert len(served) <= policy.max_skips + 1
    assert old.locality_skips == 0


# ---------------------------------------------------------------------------
# integration: retention, reconcile, reclaim (full runtime)
# ---------------------------------------------------------------------------

def _kernel(name, seconds, spec=TESLA_C2050):
    return KernelDescriptor(
        name=name, flops=seconds * spec.effective_gflops * 1e9
    )


def _app(h, name, alloc_mib, kernel_s, cpu_s, rounds=2, start_delay=0.0,
         spec=TESLA_C2050, done=None):
    """malloc → h2d → rounds x (kernel, cpu phase) → exit."""

    def gen():
        if start_delay:
            yield h.env.timeout(start_delay)
        fe = h.frontend(name)
        yield from fe.open()
        fatbin = FatBinary()
        k = _kernel(f"{name}-k", kernel_s, spec)
        handle = yield from fe.register_fat_binary(fatbin)
        yield from fe.register_function(handle, k)
        ptr = yield from fe.cuda_malloc(alloc_mib * MIB)
        yield from fe.cuda_memcpy_h2d(ptr, alloc_mib * MIB)
        for _ in range(rounds):
            yield from fe.launch_kernel(k, [ptr])
            if cpu_s:
                yield h.env.timeout(cpu_s)
        yield from fe.cuda_thread_exit()
        if done is not None:
            done.append(name)

    return gen()


def _assert_no_leak(h):
    """Only the per-vGPU CUDA-context reservations remain allocated."""
    per_device = h.runtime.config.vgpus_per_device
    for device in h.runtime.driver.devices:
        reserved = device.spec.context_reservation_bytes * per_device
        assert device.allocator.used_bytes == reserved
        assert device.allocator.allocation_count == per_device


def _locality_config(**kw):
    base = dict(
        vgpus_per_device=1,
        locality_binding=True,
        unbind_on_cpu_phase_s=0.05,
    )
    base.update(kw)
    return RuntimeConfig(**base)


def test_same_vgpu_rebind_is_a_locality_hit():
    """Unbind-with-retain + rebind to the caching vGPU skips the
    fault-in; the identical run without locality pays a full swap-in."""

    def run(locality):
        cfg = _locality_config() if locality else RuntimeConfig(
            vgpus_per_device=1, unbind_on_cpu_phase_s=0.05
        )
        h = Harness(config=cfg)
        done = []
        # A launches, sits in a long CPU phase (reaped), rebinds after.
        h.spawn(_app(h, "A", alloc_mib=64, kernel_s=0.2, cpu_s=1.0, done=done))
        # B queues during A's CPU phase, triggering the reaper.
        h.spawn(_app(h, "B", alloc_mib=64, kernel_s=0.2, cpu_s=0.0,
                     rounds=1, start_delay=0.4, done=done))
        h.run()
        assert sorted(done) == ["A", "B"]
        return h.stats

    with_loc = run(locality=True)
    without = run(locality=False)
    assert with_loc.locality_hits >= 1
    assert with_loc.locality_bytes_avoided >= 64 * MIB
    assert without.locality_hits == 0
    assert with_loc.swap_bytes_in < without.swap_bytes_in


def test_stale_cache_dropped_on_foreign_vgpu_and_memory_recovered():
    """A rebinding that lands on a different vGPU cannot revive the
    cache: it is dropped (freeing the original device) and the context
    completes via the swap copy — nothing leaks."""
    h = Harness(
        specs=[TESLA_C2050, TESLA_C2050],
        config=_locality_config(),
    )
    done = []
    # A binds gpu0 first, gets reaped with a retained cache there.
    h.spawn(_app(h, "A", alloc_mib=64, kernel_s=0.2, cpu_s=1.2, done=done))
    # B occupies gpu1 with a long kernel.
    h.spawn(_app(h, "B", alloc_mib=32, kernel_s=2.5, cpu_s=0.0,
                 rounds=1, start_delay=0.1, done=done))
    # C queues during A's CPU phase (reaper unbinds A), then holds gpu0
    # long enough that A's rebind must land on gpu1.
    h.spawn(_app(h, "C", alloc_mib=32, kernel_s=2.5, cpu_s=0.0,
                 rounds=1, start_delay=0.5, done=done))
    h.run()
    assert sorted(done) == ["A", "B", "C"]
    _assert_no_leak(h)


def test_cached_residency_reclaimed_under_memory_pressure():
    """Another context's launch that cannot fit reclaims retained caches
    on the device before falling through to eviction."""
    h = Harness(specs=[SMALL_GPU], config=_locality_config())
    done = []
    # A fills most of the 512 MiB device, then lingers on the CPU.
    h.spawn(_app(h, "A", alloc_mib=300, kernel_s=0.2, cpu_s=2.0,
                 spec=SMALL_GPU, done=done))
    # B needs 300 MiB itself: A's retained cache must be reclaimed.
    h.spawn(_app(h, "B", alloc_mib=300, kernel_s=0.2, cpu_s=0.0,
                 rounds=1, start_delay=0.5, spec=SMALL_GPU, done=done))
    h.run()
    assert sorted(done) == ["A", "B"]
    assert h.stats.locality_reclaims >= 1
    assert h.stats.locality_reclaim_bytes >= 300 * MIB
    _assert_no_leak(h)


def test_exit_with_retained_cache_releases_device_memory():
    """A context that exits while its cache is still resident must not
    leak device memory."""
    h = Harness(config=_locality_config())
    done = []
    h.spawn(_app(h, "A", alloc_mib=64, kernel_s=0.2, cpu_s=1.0,
                 rounds=1, done=done))  # exits straight from the CPU phase
    h.spawn(_app(h, "B", alloc_mib=32, kernel_s=0.3, cpu_s=0.0,
                 rounds=1, start_delay=0.4, done=done))
    h.run()
    assert sorted(done) == ["A", "B"]
    _assert_no_leak(h)


def test_locality_policy_end_to_end_completes_all_jobs():
    """No-hang/no-starvation check: a churning mix under the locality
    policy with retention on runs every job to completion."""
    h = Harness(
        specs=[TESLA_C2050, TESLA_C2050],
        config=_locality_config(policy="locality"),
    )
    done = []
    for i in range(6):
        h.spawn(_app(h, f"j{i}", alloc_mib=48, kernel_s=0.15, cpu_s=0.3,
                     rounds=3, start_delay=0.05 * i, done=done))
    h.run()
    assert sorted(done) == sorted(f"j{i}" for i in range(6))
    assert h.stats.locality_hits >= 1


def test_binding_decision_traced_with_candidate_scores():
    h = Harness(
        specs=[TESLA_C2050, TESLA_C2050],
        config=_locality_config(tracing=True),
    )
    done = []
    h.spawn(_app(h, "A", alloc_mib=32, kernel_s=0.2, cpu_s=0.2, done=done))
    h.run()
    assert done == ["A"]
    decisions = [
        e for e in h.runtime.obs.events if e.kind == "BindingDecision"
    ]
    assert decisions
    first = decisions[0]
    assert first.context == "A"
    assert len(first.scores) == 2  # both devices were scored
    assert first.chosen in {name for name, _cost in first.scores}
    assert all(cost >= 0.0 for _name, cost in first.scores)


# ---------------------------------------------------------------------------
# default-off: the model observes but never influences
# ---------------------------------------------------------------------------

def test_default_config_leaves_decisions_unwired():
    h = Harness()
    assert h.runtime.memory.cost_model is not None  # EWMA stays warm
    assert h.scheduler.cost_model is None
    assert h.runtime.migration.cost_model is None
    policy = h.runtime.memory.eviction_policy
    assert getattr(policy, "cost_fn", None) is None


def test_locality_binding_wires_the_full_decision_surface():
    h = Harness(
        config=RuntimeConfig(
            locality_binding=True,
            eviction_mode="partial",
            eviction_policy="cost_aware",
        )
    )
    model = h.runtime.cost_model
    assert h.scheduler.cost_model is model
    assert h.runtime.migration.cost_model is model
    assert h.runtime.memory.eviction_policy.cost_fn is not None


def test_config_validation():
    with pytest.raises(ValueError):
        RuntimeConfig(migration_penalty_s=-0.1)
    with pytest.raises(ValueError):
        RuntimeConfig(allocator_placement="worst_fit")
    assert RuntimeConfig(allocator_placement="best_fit").allocator_placement == "best_fit"
    assert "locality" in __import__("repro.core.policies", fromlist=["POLICY_NAMES"]).POLICY_NAMES
