"""Pluggable eviction policies (repro.core.memory.eviction)."""

import pytest

from repro.core.memory import (
    EVICTION_POLICY_NAMES,
    LfuEviction,
    LruEviction,
    SecondChanceEviction,
    CostAwareEviction,
    PageTableEntry,
    make_eviction_policy,
)

MIB = 1024**2


def _pte(size=MIB, last_use=0.0, use_count=0, referenced=False, chunk=0):
    pte = PageTableEntry(0x7000_0000_0000, size)
    pte.configure_chunks(chunk)
    pte.last_use = last_use
    pte.use_count = use_count
    pte.referenced = referenced
    return pte


def test_registry_names_and_factory():
    assert EVICTION_POLICY_NAMES == (
        "cost_aware", "lfu", "lru", "quota_aware", "second_chance"
    )
    for name in EVICTION_POLICY_NAMES:
        assert make_eviction_policy(name).name == name
    with pytest.raises(ValueError):
        make_eviction_policy("random")


def test_lru_orders_by_last_use():
    old, mid, new = _pte(last_use=1.0), _pte(last_use=2.0), _pte(last_use=3.0)
    ordered = LruEviction().order([("c", new), ("c", old), ("c", mid)])
    assert [p for _ctx, p in ordered] == [old, mid, new]


def test_lfu_orders_by_use_count_then_recency():
    rare = _pte(use_count=1, last_use=9.0)
    frequent = _pte(use_count=5, last_use=1.0)
    tied_older = _pte(use_count=2, last_use=1.0)
    tied_newer = _pte(use_count=2, last_use=2.0)
    ordered = LfuEviction().order(
        [("c", frequent), ("c", tied_newer), ("c", rare), ("c", tied_older)]
    )
    assert [p for _ctx, p in ordered] == [rare, tied_older, tied_newer, frequent]


def test_second_chance_defers_referenced_and_clears_bit():
    a = _pte(referenced=True)
    b = _pte(referenced=False)
    c = _pte(referenced=True)
    ordered = SecondChanceEviction().order([("x", a), ("x", b), ("x", c)])
    # Unreferenced b evicts first; a and c got their second chance.
    assert [p for _ctx, p in ordered] == [b, a, c]
    assert not a.referenced and not c.referenced


def test_second_chance_hand_rotates():
    policy = SecondChanceEviction()
    a, b = _pte(), _pte()
    first = policy.order([("x", a), ("x", b)])
    assert first[0][1] is a  # seq order on the first sweep
    # Hand now at a; the next sweep starts past it.
    second = policy.order([("x", a), ("x", b)])
    assert second[0][1] is b


def test_cost_aware_prefers_clean_entries():
    clean = _pte(size=4 * MIB, last_use=9.0)
    dirty = _pte(size=4 * MIB, last_use=1.0)
    dirty.on_device_allocated(0x1000)
    dirty.on_kernel_write(1.0)
    ordered = CostAwareEviction().order([("c", dirty), ("c", clean)])
    assert [p for _ctx, p in ordered] == [clean, dirty]


def test_cost_aware_uses_per_chunk_dirtiness():
    """A chunked entry dirty in one of three chunks is cheaper per byte
    freed than an unchunked dirty entry of the same size."""
    partially_dirty = _pte(size=12 * MIB, chunk=4 * MIB)
    partially_dirty.host_write(4 * MIB)
    partially_dirty.on_device_allocated(0x1000)
    partially_dirty.complete_fault((0, 4 * MIB))
    partially_dirty.kernel_write(1.0)
    fully_dirty = _pte(size=12 * MIB)
    fully_dirty.on_device_allocated(0x2000)
    fully_dirty.on_kernel_write(1.0)
    ordered = CostAwareEviction().order(
        [("c", fully_dirty), ("c", partially_dirty)]
    )
    assert [p for _ctx, p in ordered] == [partially_dirty, fully_dirty]
