"""CUDA 4.0 compatibility mode (paper §4.8).

Two behavioural changes: (i) threads of the same application share GPU
data, so the runtime binds them to the same device; (ii) dynamic binding
uses direct GPU-to-GPU transfers instead of staging through host memory.
"""

import pytest

from repro.core import RuntimeConfig
from repro.simcuda import (
    CudaDriver,
    CudaError,
    CudaRuntimeError,
    KernelDescriptor,
    QUADRO_2000,
    TESLA_C2050,
)
from repro.sim import Environment

from tests.core.conftest import Harness, MIB


def kernel(seconds, name="k"):
    return KernelDescriptor(
        name=name, flops=seconds * TESLA_C2050.effective_gflops * 1e9
    )


def thread_app(h, name, app_id, results, kernels=3, kernel_s=0.3, cpu_s=0.2):
    def app():
        fe = h.frontend(name)
        fe.application_id = app_id
        yield from fe.open()
        k = kernel(kernel_s, f"{name}-k")
        a = yield from fe.cuda_malloc(16 * MIB)
        for _ in range(kernels):
            yield from fe.launch_kernel(k, [a])
            yield h.env.timeout(cpu_s)
        yield from fe.cuda_thread_exit()
        ctx = next(c for c in h.runtime.dispatcher.contexts if c.owner == name)
        results[name] = ctx

    return app()


def test_same_application_threads_share_a_device():
    h = Harness(
        specs=[TESLA_C2050, TESLA_C2050],
        config=RuntimeConfig(vgpus_per_device=2, cuda4_semantics=True),
    )
    devices_used = {}

    def traced(name, app_id):
        def app():
            fe = h.frontend(name)
            fe.application_id = app_id
            yield from fe.open()
            k = kernel(0.5, f"{name}-k")
            a = yield from fe.cuda_malloc(8 * MIB)
            yield from fe.launch_kernel(k, [a])
            ctx = next(c for c in h.runtime.dispatcher.contexts if c.owner == name)
            devices_used[name] = ctx.vgpu.device.device_id
            yield from fe.cuda_thread_exit()

        return app()

    # Two threads of "appA" plus one of "appB".
    h.spawn(traced("A.t0", "appA"))
    h.spawn(traced("A.t1", "appA"))
    h.spawn(traced("B.t0", "appB"))
    h.run()
    assert devices_used["A.t0"] == devices_used["A.t1"]


def test_without_cuda4_threads_spread_over_devices():
    h = Harness(
        specs=[TESLA_C2050, TESLA_C2050],
        config=RuntimeConfig(vgpus_per_device=2, cuda4_semantics=False),
    )
    devices_used = {}

    def traced(name, app_id):
        def app():
            fe = h.frontend(name)
            fe.application_id = app_id
            yield from fe.open()
            k = kernel(1.0, f"{name}-k")
            a = yield from fe.cuda_malloc(8 * MIB)
            yield from fe.launch_kernel(k, [a])
            ctx = next(c for c in h.runtime.dispatcher.contexts if c.owner == name)
            devices_used[name] = ctx.vgpu.device.device_id
            yield from fe.cuda_thread_exit()

        return app()

    h.spawn(traced("A.t0", "appA"))
    h.spawn(traced("A.t1", "appA"))
    h.run()
    # Load balancing spreads them: different devices (the CUDA 3.2 mode
    # "does not differentiate threads belonging to the same application").
    assert devices_used["A.t0"] != devices_used["A.t1"]


def test_sibling_constraint_does_not_block_other_waiters():
    """A constrained thread whose device is full must not head-of-line
    block unconstrained contexts."""
    h = Harness(
        specs=[TESLA_C2050, TESLA_C2050],
        config=RuntimeConfig(vgpus_per_device=1, cuda4_semantics=True),
    )
    finished = []

    def named(name, app_id, kernel_s):
        def app():
            fe = h.frontend(name)
            fe.application_id = app_id
            yield from fe.open()
            k = kernel(kernel_s, f"{name}-k")
            a = yield from fe.cuda_malloc(4 * MIB)
            yield from fe.launch_kernel(k, [a])
            yield from fe.cuda_thread_exit()
            finished.append((name, h.env.now))

        return app()

    # t0 occupies device X for a long time; its sibling t1 must wait for
    # X specifically, while the unrelated job grabs device Y immediately.
    h.spawn(named("A.t0", "appA", kernel_s=3.0))

    def later():
        yield h.env.timeout(1.0)
        h.spawn(named("A.t1", "appA", kernel_s=0.5))
        h.spawn(named("other", None, kernel_s=0.5))

    h.spawn(later())
    h.run()
    order = [n for n, _ in finished]
    assert order.index("other") < order.index("A.t1")
    assert len(finished) == 3


def test_p2p_migration_moves_data_directly():
    h = Harness(
        specs=[QUADRO_2000, TESLA_C2050],
        config=RuntimeConfig(
            vgpus_per_device=1,
            migration_enabled=True,
            cuda4_semantics=True,
        ),
    )
    results = {}

    def blocker():
        # Occupies the fast C2050 briefly, forcing the long job onto the
        # Quadro; then exits, opening the migration window.
        fe = h.frontend("blocker")
        yield from fe.open()
        k = kernel(0.5, "blocker-k")
        a = yield from fe.cuda_malloc(4 * MIB)
        yield from fe.launch_kernel(k, [a])
        yield from fe.cuda_thread_exit()

    def long_job():
        fe = h.frontend("long")
        yield from fe.open()
        k = kernel(0.4, "long-k")
        a = yield from fe.cuda_malloc(64 * MIB)
        yield from fe.cuda_memcpy_h2d(a, 64 * MIB)
        for _ in range(6):
            yield from fe.launch_kernel(k, [a])
            yield h.env.timeout(0.4)
        yield from fe.cuda_memcpy_d2h(a, 64 * MIB)
        yield from fe.cuda_thread_exit()
        results["long"] = h.env.now

    # Make the fast GPU busy first so the long job starts on the Quadro.
    h.spawn(blocker())

    def delayed():
        yield h.env.timeout(0.3)
        h.spawn(long_job())

    h.spawn(delayed())
    h.run()
    assert "long" in results
    assert h.stats.migrations >= 1
    assert h.stats.migrations_p2p >= 1
    assert h.stats.p2p_bytes >= 64 * MIB


def test_p2p_migration_faster_than_swap_migration():
    def run(cuda4):
        h = Harness(
            specs=[QUADRO_2000, TESLA_C2050],
            config=RuntimeConfig(
                vgpus_per_device=1,
                migration_enabled=True,
                cuda4_semantics=cuda4,
            ),
        )
        results = {}

        def blocker():
            fe = h.frontend("blocker")
            yield from fe.open()
            k = kernel(0.5, "b-k")
            a = yield from fe.cuda_malloc(4 * MIB)
            yield from fe.launch_kernel(k, [a])
            yield from fe.cuda_thread_exit()

        def long_job():
            fe = h.frontend("long")
            yield from fe.open()
            k = kernel(0.4, "l-k")
            a = yield from fe.cuda_malloc(512 * MIB)
            yield from fe.cuda_memcpy_h2d(a, 512 * MIB)
            for _ in range(6):
                yield from fe.launch_kernel(k, [a])
                yield h.env.timeout(0.4)
            yield from fe.cuda_thread_exit()
            results["t"] = h.env.now

        h.spawn(blocker())

        def delayed():
            yield h.env.timeout(0.3)
            h.spawn(long_job())

        h.spawn(delayed())
        h.run()
        return results["t"], h.stats

    t_p2p, s_p2p = run(True)
    t_swap, s_swap = run(False)
    if s_p2p.migrations and s_swap.migrations:
        # One host round trip saved per migrated entry.
        assert t_p2p <= t_swap


def test_memcpy_peer_validates_arguments():
    env = Environment()
    driver = CudaDriver(env, [TESLA_C2050, QUADRO_2000])

    def probe():
        c1 = yield from driver.create_context(driver.devices[0])
        c2 = yield from driver.create_context(driver.devices[1])
        a = yield from driver.malloc(c1, MIB)
        b = yield from driver.malloc(c2, MIB)
        # same-device peer copy rejected
        c1b = yield from driver.create_context(driver.devices[0])
        a2 = yield from driver.malloc(c1b, MIB)
        with pytest.raises(CudaRuntimeError) as e:
            yield from driver.memcpy_peer(c1, a, c1b, a2, MIB)
        assert e.value.code == CudaError.cudaErrorInvalidValue
        # oversize rejected
        with pytest.raises(CudaRuntimeError):
            yield from driver.memcpy_peer(c1, a, c2, b, 10 * MIB)
        # valid copy works and accounts bytes on both devices
        yield from driver.memcpy_peer(c1, a, c2, b, MIB)
        assert driver.devices[0].bytes_copied >= MIB
        assert driver.devices[1].bytes_copied >= MIB

    p = env.process(probe())
    env.run(until=p)
