"""Demand-paged chunked swapping (RuntimeConfig.swap_chunk_bytes).

Unit tests of the per-chunk Figure-4 state machine on PageTableEntry,
plus end-to-end checks that chunking moves only the bytes that exist —
and that ``swap_chunk_bytes=0`` reproduces whole-entry behavior
bit-for-bit in the runtime stats.
"""

import pytest

from repro.core import RuntimeConfig
from repro.core.memory import PageTableEntry
from repro.simcuda import GPUSpec, KernelDescriptor

from tests.core.conftest import Harness, MIB

SMALL_GPU = GPUSpec(
    name="SmallGPU",
    sm_count=14,
    cores_per_sm=32,
    clock_ghz=1.15,
    memory_bytes=512 * MIB,
)


# ---------------------------------------------------------------------------
# PageTableEntry chunk state machine
# ---------------------------------------------------------------------------

def _pte(size, chunk=0):
    pte = PageTableEntry(0x7000_0000_0000, size)
    pte.configure_chunks(chunk)
    return pte


def test_configure_chunks_splits_with_short_tail():
    pte = _pte(10 * MIB, chunk=4 * MIB)
    assert pte.chunked
    assert [(c.offset, c.size) for c in pte.chunks] == [
        (0, 4 * MIB),
        (4 * MIB, 4 * MIB),
        (8 * MIB, 2 * MIB),
    ]


def test_small_entries_stay_whole():
    assert not _pte(4 * MIB, chunk=4 * MIB).chunked
    assert not _pte(4 * MIB, chunk=0).chunked


def test_partial_host_write_marks_only_covered_chunks():
    pte = _pte(12 * MIB, chunk=4 * MIB)
    pte.host_write(5 * MIB)  # covers chunk 0 fully, chunk 1 partially
    assert [c.valid for c in pte.chunks] == [True, True, False]
    assert [c.to_copy_2dev for c in pte.chunks] == [True, True, False]
    assert pte.to_copy_2dev  # aggregate is the OR over the chunks


def test_fault_runs_coalesce_adjacent_chunks():
    pte = _pte(12 * MIB, chunk=4 * MIB)
    pte.host_write(8 * MIB)
    pte.on_device_allocated(0x1000)
    assert pte.fault_runs() == [(0, 8 * MIB)]  # two chunks, one transfer
    assert pte.fault_bytes() == 8 * MIB
    pte.complete_fault((0, 8 * MIB))
    assert pte.fault_runs() == []
    assert not pte.to_copy_2dev


def test_kernel_write_on_output_buffer_dirties_everything():
    """A never-written buffer the kernel writes is all output: every
    chunk becomes valid and device-dirty."""
    pte = _pte(8 * MIB, chunk=4 * MIB)
    pte.on_device_allocated(0x1000)
    pte.kernel_write(1.0)
    assert all(c.valid and c.to_copy_2swap for c in pte.chunks)
    assert pte.dirty_bytes() == 8 * MIB


def test_kernel_write_dirties_only_valid_chunks():
    pte = _pte(12 * MIB, chunk=4 * MIB)
    pte.host_write(4 * MIB)
    pte.on_device_allocated(0x1000)
    pte.complete_fault((0, 4 * MIB))
    pte.kernel_write(1.0)
    assert [c.to_copy_2swap for c in pte.chunks] == [True, False, False]
    assert pte.dirty_bytes() == 4 * MIB


def test_writeback_then_release_keeps_valid_set():
    pte = _pte(12 * MIB, chunk=4 * MIB)
    pte.host_write(4 * MIB)
    pte.on_device_allocated(0x1000)
    pte.complete_fault((0, 4 * MIB))
    pte.kernel_write(1.0)
    for run in pte.writeback_runs():
        pte.complete_writeback(run)
    pte.on_device_released()
    # Only the valid chunk needs re-faulting; invalid ones hold no data.
    assert pte.fault_bytes() == 4 * MIB
    assert pte.valid_bytes() == 4 * MIB


def test_chunk_invariants_rejected():
    # Corrupt the packed bit-vectors directly (chunk 0 = bit 0): the
    # invariant checker must reject per-chunk Figure-4 violations.
    pte = _pte(8 * MIB, chunk=4 * MIB)
    pte._valid_bm = 0b01
    pte._dev_bm = 0b01
    pte._swap_bm = 0b01  # both transfer flags at once
    pte._sync_flags()
    with pytest.raises(AssertionError):
        pte.check_invariants()
    pte._valid_bm = 0b00
    pte._dev_bm = 0b01  # invalid chunk with a data flag
    pte._swap_bm = 0b00
    pte._sync_flags()
    with pytest.raises(AssertionError):
        pte.check_invariants()


def test_aggregate_flags_must_match_chunks():
    pte = _pte(8 * MIB, chunk=4 * MIB)
    pte._valid_bm = 0b01
    pte._dev_bm = 0b01  # without _sync_flags: aggregate stays stale
    with pytest.raises(AssertionError):
        pte.check_invariants()


def test_chunk_snapshots_do_not_write_through():
    """``pte.chunks`` is a materialized view of the interned bit-vector
    state — mutating a snapshot must not alter the entry."""
    pte = _pte(8 * MIB, chunk=4 * MIB)
    pte.host_write(4 * MIB)
    snap = pte.chunks
    snap[1].valid = True
    snap[1].to_copy_2dev = True
    assert [c.valid for c in pte.chunks] == [True, False]
    assert pte.fault_runs() == [(0, 4 * MIB)]


# ---------------------------------------------------------------------------
# end to end
# ---------------------------------------------------------------------------

def _partial_write_app(h, written_mib, alloc_mib=300):
    """malloc a big buffer, host-write only a prefix, launch on it."""

    def app():
        fe = h.frontend("chunked")
        yield from fe.open()
        k = KernelDescriptor(name="k", flops=SMALL_GPU.effective_gflops * 1e9 * 0.01)
        a = yield from fe.cuda_malloc(alloc_mib * MIB)
        yield from fe.cuda_memcpy_h2d(a, written_mib * MIB)
        yield from fe.launch_kernel(k, [a], read_only=[a])
        yield from fe.cuda_thread_exit()

    return app()


def test_chunked_launch_faults_in_only_written_chunks():
    h = Harness(
        specs=[SMALL_GPU],
        config=RuntimeConfig(vgpus_per_device=1, swap_chunk_bytes=32 * MIB),
    )
    p = h.spawn(_partial_write_app(h, written_mib=64))
    h.run(until=p)
    # 64 MiB written → exactly two 32 MiB chunks transferred, not 300 MiB.
    assert h.stats.swap_bytes_in == 64 * MIB


def test_unchunked_launch_faults_in_whole_entry():
    h = Harness(specs=[SMALL_GPU], config=RuntimeConfig(vgpus_per_device=1))
    p = h.spawn(_partial_write_app(h, written_mib=64))
    h.run(until=p)
    assert h.stats.swap_bytes_in == 300 * MIB


def _two_tenant_stats(chunk):
    h = Harness(
        specs=[SMALL_GPU],
        config=RuntimeConfig(vgpus_per_device=2, swap_chunk_bytes=chunk),
    )
    for name in ("t1", "t2"):
        h.spawn(
            h.simple_app(name=name, alloc_mib=280, kernel_count=3,
                         cpu_phase_s=0.2)
        )
    h.run()
    return h.env.now, h.stats.as_dict()


def test_chunk_size_zero_is_bitwise_identical():
    """swap_chunk_bytes=0 (the default) reproduces whole-entry behavior
    exactly: same stats, same simulated end time, run after run."""
    assert _two_tenant_stats(0) == _two_tenant_stats(0)


def test_fully_written_chunked_workload_moves_same_bytes():
    """When every byte of every buffer holds data, chunk accounting must
    sum to exactly the whole-entry byte counts (runs coalesce back into
    one transfer per entry), so the two granularities agree end to end."""
    t_legacy, s_legacy = _two_tenant_stats(0)
    t_chunked, s_chunked = _two_tenant_stats(64 * MIB)
    assert s_chunked["swap_bytes_in"] == s_legacy["swap_bytes_in"]
    assert s_chunked["swap_bytes_out"] == s_legacy["swap_bytes_out"]
    assert t_chunked == pytest.approx(t_legacy)


def test_chunked_overlap_engine_pipelines_runs():
    """Chunked transfers ride the overlap engine's copy streams."""
    h = Harness(
        specs=[SMALL_GPU],
        config=RuntimeConfig(
            vgpus_per_device=1, swap_chunk_bytes=32 * MIB
        ).overlapped(),
    )
    p = h.spawn(_partial_write_app(h, written_mib=96))
    h.run(until=p)
    assert h.stats.swap_bytes_in == 96 * MIB
