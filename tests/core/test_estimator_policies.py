"""RuntimeEstimator and the history-driven policies (sjf_est, hrrn,
fairshare)."""

import pytest

from repro.core.config import RuntimeConfig
from repro.core.estimator import RuntimeEstimator
from repro.core.policies import (
    POLICY_NAMES,
    EstimatorSjfPolicy,
    FairSharePolicy,
    HrrnPolicy,
    make_policy,
)
from repro.qos.tenant import Tenant


class FakeEnv:
    def __init__(self, now=0.0):
        self.now = now


class FakeCtx:
    _seq = iter(range(10000))

    def __init__(self, tenant=None, gpu_seconds_used=0.0, wait_since=0.0,
                 estimated_gpu_seconds=None, now=100.0):
        self.context_id = next(self._seq)
        self.tenant = tenant
        self.gpu_seconds_used = gpu_seconds_used
        self.wait_since = wait_since
        self.estimated_gpu_seconds = estimated_gpu_seconds
        self.env = FakeEnv(now)


class TestRuntimeEstimator:
    def test_cold_start_none(self):
        assert RuntimeEstimator().predict("alice") is None

    def test_user_history_wins(self):
        est = RuntimeEstimator(min_samples=2)
        for _ in range(3):
            est.observe("alice", 10.0, group="ml")
            est.observe("bob", 1.0, group="web")
        assert est.predict("alice") == pytest.approx(10.0)
        assert est.predict("bob") == pytest.approx(1.0)

    def test_group_fallback_for_cold_user(self):
        est = RuntimeEstimator(min_samples=2)
        for _ in range(4):
            est.observe("alice", 8.0, group="ml")
        # carol has no history; her group does.
        assert est.predict("carol", group="ml") == pytest.approx(8.0)

    def test_global_fallback(self):
        est = RuntimeEstimator()
        est.observe("alice", 4.0)
        assert est.predict("nobody", group="nogroup") == pytest.approx(4.0)

    def test_ewma_tracks_drift(self):
        est = RuntimeEstimator(alpha=0.5, min_samples=1)
        est.observe("u", 10.0)
        est.observe("u", 0.0)
        assert est.predict("u") == pytest.approx(5.0)

    def test_negative_sample_ignored(self):
        est = RuntimeEstimator()
        est.observe("u", -1.0)
        assert est.observations == 0

    def test_predict_for_uses_tenant(self):
        est = RuntimeEstimator(min_samples=1)
        est.observe("alice", 7.0)
        ctx = FakeCtx(tenant=Tenant("alice"))
        assert est.predict_for(ctx) == pytest.approx(7.0)


class TestRegistration:
    def test_new_policies_registered(self):
        for name in ("sjf_est", "hrrn", "fairshare"):
            assert name in POLICY_NAMES
            assert make_policy(name).name == name

    def test_runtime_wires_estimator_and_tenants(self):
        from repro.core.runtime import NodeRuntime
        from repro.sim import Environment
        from repro.simcuda.device import TESLA_C2050
        from repro.simcuda.driver import CudaDriver

        env = Environment()
        rt = NodeRuntime(env, CudaDriver(env, [TESLA_C2050]),
                         config=RuntimeConfig(policy="sjf_est"))
        assert isinstance(rt.scheduler.policy.estimator, RuntimeEstimator)
        rt2 = NodeRuntime(env, CudaDriver(env, [TESLA_C2050]),
                          config=RuntimeConfig(policy="fairshare"))
        assert rt2.scheduler.policy.tenants_fn is not None


class TestEstimatorSjf:
    def test_prefers_predicted_short(self):
        est = RuntimeEstimator(min_samples=1)
        est.observe("short", 1.0)
        est.observe("short", 1.0)
        est.observe("long", 50.0)
        est.observe("long", 50.0)
        policy = EstimatorSjfPolicy()
        policy.estimator = est
        a = FakeCtx(tenant=Tenant("long"))
        b = FakeCtx(tenant=Tenant("short"))
        assert policy.pick_next([a, b]) is b

    def test_remaining_discounts_used_time(self):
        est = RuntimeEstimator(min_samples=1)
        est.observe("u", 10.0)
        est.observe("v", 10.0)
        policy = EstimatorSjfPolicy()
        policy.estimator = est
        nearly_done = FakeCtx(tenant=Tenant("u"), gpu_seconds_used=9.5)
        fresh = FakeCtx(tenant=Tenant("v"), gpu_seconds_used=0.0)
        assert policy.pick_next([fresh, nearly_done]) is nearly_done

    def test_cold_start_falls_back_to_hint_then_fcfs(self):
        policy = EstimatorSjfPolicy()
        policy.estimator = RuntimeEstimator()
        hinted = FakeCtx(estimated_gpu_seconds=2.0)
        unhinted = FakeCtx()
        assert policy.pick_next([unhinted, hinted]) is hinted

    def test_empty_queue(self):
        assert EstimatorSjfPolicy().pick_next([]) is None


class TestHrrn:
    def test_long_wait_beats_short_service(self):
        est = RuntimeEstimator(min_samples=1)
        for _ in range(2):
            est.observe("a", 10.0)
            est.observe("b", 10.0)
        policy = HrrnPolicy()
        policy.estimator = est
        old = FakeCtx(tenant=Tenant("a"), wait_since=0.0, now=100.0)
        young = FakeCtx(tenant=Tenant("b"), wait_since=99.0, now=100.0)
        assert policy.pick_next([young, old]) is old

    def test_shorter_service_wins_equal_wait(self):
        est = RuntimeEstimator(min_samples=1)
        for _ in range(2):
            est.observe("fast", 1.0)
            est.observe("slow", 100.0)
        policy = HrrnPolicy()
        policy.estimator = est
        slow = FakeCtx(tenant=Tenant("slow"), wait_since=50.0, now=100.0)
        fast = FakeCtx(tenant=Tenant("fast"), wait_since=50.0, now=100.0)
        assert policy.pick_next([slow, fast]) is fast


class TestFairShare:
    def _wire(self, policy, tenants):
        policy.tenants_fn = lambda: tenants

    def test_lighter_user_first(self):
        policy = FairSharePolicy()
        heavy = Tenant("heavy", group="g1")
        light = Tenant("light", group="g1")
        heavy.gpu_seconds_used = 100.0
        light.gpu_seconds_used = 1.0
        self._wire(policy, [heavy, light])
        a = FakeCtx(tenant=heavy)
        b = FakeCtx(tenant=light)
        assert policy.pick_next([a, b]) is b

    def test_group_level_dominates(self):
        policy = FairSharePolicy()
        # g1 as a group consumed more, even though the g1 waiter itself
        # is lighter than the g2 waiter.
        g1a = Tenant("g1a", group="g1")
        g1b = Tenant("g1b", group="g1")
        g2a = Tenant("g2a", group="g2")
        g1a.gpu_seconds_used = 1.0
        g1b.gpu_seconds_used = 100.0
        g2a.gpu_seconds_used = 5.0
        self._wire(policy, [g1a, g1b, g2a])
        assert policy.pick_next(
            [FakeCtx(tenant=g1a), FakeCtx(tenant=g2a)]
        ).tenant is g2a

    def test_usage_decays(self):
        policy = FairSharePolicy(half_life_s=10.0)
        old_heavy = Tenant("old", group="g1")
        recent = Tenant("recent", group="g2")
        old_heavy.gpu_seconds_used = 100.0
        recent.gpu_seconds_used = 0.0
        self._wire(policy, [old_heavy, recent])
        # Observe the usage at t=0, then let 20 half-lives pass while
        # `recent` consumes a little.
        policy.pick_next([FakeCtx(tenant=old_heavy, now=0.0)])
        recent.gpu_seconds_used = 5.0
        picked = policy.pick_next(
            [FakeCtx(tenant=old_heavy, now=200.0),
             FakeCtx(tenant=recent, now=200.0)]
        )
        assert picked.tenant is old_heavy

    def test_no_decay_when_disabled(self):
        policy = FairSharePolicy(half_life_s=0.0)
        heavy = Tenant("h", group="g1")
        light = Tenant("l", group="g2")
        heavy.gpu_seconds_used = 100.0
        light.gpu_seconds_used = 1.0
        self._wire(policy, [heavy, light])
        policy.pick_next([FakeCtx(tenant=heavy, now=0.0)])
        picked = policy.pick_next(
            [FakeCtx(tenant=heavy, now=1000.0),
             FakeCtx(tenant=light, now=1000.0)]
        )
        assert picked.tenant is light

    def test_tenantless_context_uses_own_usage(self):
        policy = FairSharePolicy()
        self._wire(policy, [])
        a = FakeCtx(gpu_seconds_used=5.0)
        b = FakeCtx(gpu_seconds_used=1.0)
        assert policy.pick_next([a, b]) is b
