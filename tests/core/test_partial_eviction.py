"""Device-wide partial eviction (RuntimeConfig.eviction_mode="partial").

Instead of swapping out a whole victim context, the eviction loop frees
only the bytes the faulting launch needs, in eviction-policy order, and
victims keep their vGPU.  Also covers the Table 1 "Swap memory cannot be
allocated" path end to end.
"""

import pytest

from repro.core import RuntimeConfig
from repro.core.errors import RuntimeApiError, RuntimeErrorCode
from repro.obs import Eviction
from repro.simcuda import GPUSpec, KernelDescriptor

from tests.core.conftest import Harness, MIB

SMALL_GPU = GPUSpec(
    name="SmallGPU",
    sm_count=14,
    cores_per_sm=32,
    clock_ghz=1.15,
    memory_bytes=512 * MIB,
)
# 512 MiB - 2 vGPU reservations of 64 MiB = 384 MiB usable.


def kernel(name="k", seconds=0.02):
    return KernelDescriptor(
        name=name, flops=seconds * SMALL_GPU.effective_gflops * 1e9
    )


def _hoarder(h, name, done, buf_mib=100, bufs=3, hold_s=4.0):
    """Allocates several buffers, launches on them, then idles (an
    eligible victim), then launches again (faulting evicted data back)."""

    def app():
        fe = h.frontend(name)
        yield from fe.open()
        k = kernel(f"{name}-k")
        ptrs = []
        for _ in range(bufs):
            p = yield from fe.cuda_malloc(buf_mib * MIB)
            yield from fe.cuda_memcpy_h2d(p, buf_mib * MIB)
            ptrs.append(p)
        yield from fe.launch_kernel(k, ptrs)
        yield h.env.timeout(hold_s)
        yield from fe.launch_kernel(k, ptrs)
        yield from fe.cuda_thread_exit()
        done[name] = h.env.now

    return app()


def _latecomer(h, name, done, buf_mib=100, delay_s=1.0):
    def app():
        fe = h.frontend(name)
        yield from fe.open()
        yield h.env.timeout(delay_s)
        k = kernel(f"{name}-k")
        p = yield from fe.cuda_malloc(buf_mib * MIB)
        yield from fe.cuda_memcpy_h2d(p, buf_mib * MIB)
        yield from fe.launch_kernel(k, [p])
        yield from fe.cuda_thread_exit()
        done[name] = h.env.now

    return app()


def _run(mode, policy="lru", tracing=False):
    h = Harness(
        specs=[SMALL_GPU],
        config=RuntimeConfig(
            vgpus_per_device=2,
            eviction_mode=mode,
            eviction_policy=policy,
            tracing=tracing,
        ),
    )
    done = {}
    h.spawn(_hoarder(h, "hoarder", done))
    h.spawn(_latecomer(h, "late", done))
    h.run()
    assert set(done) == {"hoarder", "late"}
    return h


def test_partial_eviction_frees_only_required_bytes():
    h = _run("partial")
    # The latecomer needed 100 MiB with 84 MiB free: evicting one of the
    # hoarder's three 100 MiB entries suffices — not all 300 MiB.
    assert h.stats.evictions_partial >= 1
    assert h.stats.eviction_bytes_freed < 300 * MIB
    assert h.stats.swaps_inter >= 1


def test_partial_eviction_victim_stays_bound():
    """Whole-context eviction unbinds the victim; partial eviction takes
    entries, not the vGPU, so the victim never rebinds."""
    partial = _run("partial")
    context = _run("context")
    assert partial.stats.unbindings < context.stats.unbindings


def test_partial_eviction_moves_fewer_bytes_than_whole_context():
    partial = _run("partial")
    context = _run("context")
    partial_bytes = partial.stats.swap_bytes_out + partial.stats.swap_bytes_in
    context_bytes = context.stats.swap_bytes_out + context.stats.swap_bytes_in
    assert partial_bytes < context_bytes


@pytest.mark.parametrize("policy", ["lru", "lfu", "second_chance", "cost_aware"])
def test_every_policy_completes_the_workload(policy):
    h = _run("partial", policy=policy)
    assert h.stats.evictions_partial >= 1


def test_eviction_trace_event_carries_policy_and_bytes():
    h = _run("partial", policy="cost_aware", tracing=True)
    events = h.runtime.obs.events_of(Eviction)
    assert events, "partial eviction must emit an Eviction event"
    ev = events[0]
    assert ev.policy == "cost_aware"
    assert ev.bytes_freed > 0
    assert ev.victims >= 1
    assert ev.dirty_bytes <= ev.bytes_freed


def test_swap_area_gauges_exported():
    h = _run("partial")
    snap = h.runtime.metrics.snapshot()
    assert "swap_area_used_bytes" in snap
    assert "swap_area_peak_bytes" in snap
    assert snap["swap_area_peak_bytes"] >= snap["swap_area_used_bytes"]
    assert snap["swap_area_peak_bytes"] > 0


# ---------------------------------------------------------------------------
# Table 1: "Swap memory cannot be allocated"
# ---------------------------------------------------------------------------

def test_swap_exhaustion_reaches_application_instead_of_hanging():
    h = Harness(
        specs=[SMALL_GPU],
        config=RuntimeConfig(
            vgpus_per_device=1, host_swap_capacity_bytes=100 * MIB
        ),
    )

    def app():
        fe = h.frontend("greedy")
        yield from fe.open()
        yield from fe.cuda_malloc(60 * MIB)
        with pytest.raises(RuntimeApiError) as e:
            yield from fe.cuda_malloc(60 * MIB)  # swap area has 40 MiB left
        assert e.value.code == RuntimeErrorCode.SWAP_ALLOCATION_FAILED
        yield from fe.cuda_thread_exit()
        return True

    p = h.spawn(app())
    h.run(until=p)
    assert p.value is True
