"""Registration-call coverage: the full __cudaRegister* family."""

from repro.simcuda import FatBinary, KernelDescriptor, TESLA_C2050

from tests.core.conftest import Harness, MIB


def test_var_texture_shared_registration(harness):
    h = harness

    def app():
        fe = h.frontend("reg")
        yield from fe.open()
        fb = FatBinary()
        k = KernelDescriptor(
            name="tex-k", flops=0.1 * TESLA_C2050.effective_gflops * 1e9
        )
        handle = yield from fe.register_fat_binary(fb)
        yield from fe.register_function(handle, k)
        yield from fe.register_var(handle, "g_coeffs")
        yield from fe.register_texture(handle, "tex_input")
        yield from fe.register_shared_var(handle, "s_tile")
        a = yield from fe.cuda_malloc(MIB)
        yield from fe.launch_kernel(k, [a])
        yield from fe.cuda_thread_exit()
        return fb

    p = h.spawn(app())
    h.run(until=p)
    fb = p.value
    assert fb.variables == ["g_coeffs"]
    assert fb.textures == ["tex_input"]
    assert fb.shared_vars == ["s_tile"]


def test_registration_precedes_binding(harness):
    """Registration calls complete without any vGPU being bound — the
    §4.3 observation that lets the dispatcher defer binding."""
    h = harness

    def app():
        fe = h.frontend("prebind")
        yield from fe.open()
        fb = FatBinary()
        handle = yield from fe.register_fat_binary(fb)
        yield from fe.register_var(handle, "v")
        assert h.stats.bindings == 0  # still unbound after registration
        yield from fe.cuda_thread_exit()

    p = h.spawn(app())
    h.run(until=p)
    assert h.stats.bindings == 0
