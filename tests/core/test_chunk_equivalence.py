"""Bitmap chunk state ≡ the historical per-``Chunk``-object semantics.

The interned bit-vector representation on :class:`PageTableEntry` must be
*bit-identical* to the per-chunk Figure-4 state machine it replaced: the
property test below drives a reference implementation (a faithful copy of
the old per-``Chunk`` object model) and the bitmap entry through the same
random mutation sequences and asserts identical coalesced runs, flags,
byte counts — and identical page-table epoch bumps, so memoization keyed
on the epoch can never observe a divergence either.

Plus the payoff assertion: the packed state of a multi-GiB chunked entry
is a few hundred bytes of integers, not tens of thousands of Python
objects.
"""

import sys
from types import SimpleNamespace

import pytest

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is an optional test dep
    HAVE_HYPOTHESIS = False

from repro.core.memory.page_table import PageTableEntry

MIB = 1024**2


# ---------------------------------------------------------------------------
# reference implementation: the old per-Chunk object model, verbatim logic
# ---------------------------------------------------------------------------
class _RefChunk:
    __slots__ = ("offset", "size", "valid", "to_copy_2dev", "to_copy_2swap")

    def __init__(self, offset, size):
        self.offset = offset
        self.size = size
        self.valid = False
        self.to_copy_2dev = False
        self.to_copy_2swap = False


class _RefEntry:
    """The pre-bitmap chunked state machine (per-chunk Python objects)."""

    def __init__(self, size, chunk_bytes):
        self.size = size
        self.is_allocated = False
        self.to_copy_2dev = False
        self.to_copy_2swap = False
        self.epoch = 0
        assert 0 < chunk_bytes < size
        self.chunks = [
            _RefChunk(offset, min(chunk_bytes, size - offset))
            for offset in range(0, size, chunk_bytes)
        ]

    def _bump(self):
        self.epoch += 1

    def _sync_flags(self):
        self.to_copy_2dev = any(c.to_copy_2dev for c in self.chunks)
        self.to_copy_2swap = any(c.to_copy_2swap for c in self.chunks)

    @staticmethod
    def _coalesce(chunks):
        runs = []
        for c in chunks:
            if runs and runs[-1][0] + runs[-1][1] == c.offset:
                runs[-1] = (runs[-1][0], runs[-1][1] + c.size)
            else:
                runs.append((c.offset, c.size))
        return runs

    def _chunks_in(self, run):
        offset, nbytes = run
        return [c for c in self.chunks if offset <= c.offset < offset + nbytes]

    def host_write(self, nbytes=None):
        self._bump()
        covered = self.size if nbytes is None else min(nbytes, self.size)
        for c in self.chunks:
            if c.offset < covered:
                c.valid = True
                c.to_copy_2dev = True
                c.to_copy_2swap = False
        self._sync_flags()

    def on_device_allocated(self):
        self._bump()
        self.is_allocated = True

    def kernel_write(self):
        self._bump()
        assert self.is_allocated and not self.to_copy_2dev
        if not any(c.valid for c in self.chunks):
            for c in self.chunks:
                c.valid = True
                c.to_copy_2swap = True
        else:
            for c in self.chunks:
                if c.valid:
                    c.to_copy_2swap = True
        self._sync_flags()

    def fault_runs(self):
        return self._coalesce(c for c in self.chunks if c.to_copy_2dev)

    def complete_fault(self, run):
        assert self.is_allocated
        self._bump()
        for c in self._chunks_in(run):
            c.to_copy_2dev = False
        self._sync_flags()

    def writeback_runs(self):
        return self._coalesce(c for c in self.chunks if c.to_copy_2swap)

    def complete_writeback(self, run):
        self._bump()
        for c in self._chunks_in(run):
            c.to_copy_2swap = False
        self._sync_flags()

    def device_current_runs(self):
        return self._coalesce(
            c for c in self.chunks if c.valid and not c.to_copy_2dev
        )

    def on_device_released(self):
        assert not self.to_copy_2swap
        self._bump()
        self.is_allocated = False
        for c in self.chunks:
            if c.valid:
                c.to_copy_2dev = True
        self._sync_flags()

    def drop_device_state(self):
        self._bump()
        self.is_allocated = False
        for c in self.chunks:
            c.to_copy_2swap = False
            if c.valid:
                c.to_copy_2dev = True
        self._sync_flags()

    def discard_device_dirty(self):
        self._bump()
        for c in self.chunks:
            c.to_copy_2swap = False
        self._sync_flags()

    def fault_bytes(self):
        return sum(n for _o, n in self.fault_runs())

    def dirty_bytes(self):
        return sum(n for _o, n in self.writeback_runs())

    def valid_bytes(self):
        return sum(c.size for c in self.chunks if c.valid)


# ---------------------------------------------------------------------------
# driving both implementations through the same mutation sequence
# ---------------------------------------------------------------------------
def _bitmap_entry(size, chunk_bytes):
    pte = PageTableEntry(0x7000_0000_0000, size)
    pte.configure_chunks(chunk_bytes)
    assert pte.chunked
    # A stand-in table so epoch bumps are observable on unit entries.
    pte._table = SimpleNamespace(epoch=0)
    return pte


def _assert_equivalent(pte, ref):
    assert pte.fault_runs() == ref.fault_runs()
    assert pte.writeback_runs() == ref.writeback_runs()
    assert pte.device_current_runs() == ref.device_current_runs()
    assert pte.fault_bytes() == ref.fault_bytes()
    assert pte.dirty_bytes() == ref.dirty_bytes()
    assert pte.valid_bytes() == ref.valid_bytes()
    assert pte.to_copy_2dev == ref.to_copy_2dev
    assert pte.to_copy_2swap == ref.to_copy_2swap
    assert pte.is_allocated == ref.is_allocated
    assert pte._table.epoch == ref.epoch, "epoch bump counts diverged"
    assert [
        (c.valid, c.to_copy_2dev, c.to_copy_2swap) for c in pte.chunks
    ] == [(c.valid, c.to_copy_2dev, c.to_copy_2swap) for c in ref.chunks]


#: Mutation opcodes; each applies to both implementations iff its guard
#: holds (guards keep the sequence inside the legal Figure-4 states).
_OPS = (
    "host_write",
    "alloc",
    "fault_one",
    "fault_all",
    "kernel_write",
    "writeback_one",
    "writeback_all",
    "release",
    "drop",
    "discard",
)


def _apply(op, arg, pte, ref):
    """Apply one guarded mutation to both implementations; the guard is
    evaluated on the reference (both agree by induction)."""
    if op == "host_write":
        n = 1 + arg % ref.size
        pte.host_write(n)
        ref.host_write(n)
    elif op == "alloc" and not ref.is_allocated:
        pte.on_device_allocated(0x1000)
        ref.on_device_allocated()
    elif op == "fault_one" and ref.is_allocated and ref.fault_runs():
        runs = ref.fault_runs()
        run = runs[arg % len(runs)]
        pte.complete_fault(run)
        ref.complete_fault(run)
    elif op == "fault_all" and ref.is_allocated:
        for run in ref.fault_runs():
            pte.complete_fault(run)
            ref.complete_fault(run)
    elif op == "kernel_write" and ref.is_allocated and not ref.to_copy_2dev:
        pte.kernel_write(1.0)
        ref.kernel_write()
    elif op == "writeback_one" and ref.writeback_runs():
        runs = ref.writeback_runs()
        run = runs[arg % len(runs)]
        pte.complete_writeback(run)
        ref.complete_writeback(run)
    elif op == "writeback_all":
        for run in ref.writeback_runs():
            pte.complete_writeback(run)
            ref.complete_writeback(run)
    elif op == "release" and ref.is_allocated and not ref.to_copy_2swap:
        pte.on_device_released()
        ref.on_device_released()
    elif op == "drop" and ref.is_allocated:
        pte.drop_device_state()
        ref.drop_device_state()
    elif op == "discard" and ref.is_allocated:
        pte.discard_device_dirty()
        ref.discard_device_dirty()


if HAVE_HYPOTHESIS:

    @settings(max_examples=200, deadline=None)
    @given(
        nchunks=st.integers(min_value=2, max_value=67),
        tail=st.integers(min_value=1, max_value=64),
        ops=st.lists(
            st.tuples(st.sampled_from(_OPS), st.integers(min_value=0, max_value=1 << 30)),
            min_size=1,
            max_size=40,
        ),
    )
    def test_bitmap_state_matches_reference(nchunks, tail, ops):
        chunk_bytes = 64
        size = (nchunks - 1) * chunk_bytes + tail  # last chunk may be short
        pte = _bitmap_entry(size, chunk_bytes)
        ref = _RefEntry(size, chunk_bytes)
        _assert_equivalent(pte, ref)
        for op, arg in ops:
            _apply(op, arg, pte, ref)
            pte.check_invariants()
            _assert_equivalent(pte, ref)


def test_bitmap_state_matches_reference_smoke():
    """Deterministic slice of the property (runs even without hypothesis):
    a canonical partial-write → fault → kernel-write → writeback →
    release → re-fault cycle stays bit-identical to the reference."""
    size, chunk = 13 * 64 + 17, 64
    pte = _bitmap_entry(size, chunk)
    ref = _RefEntry(size, chunk)
    script = [
        ("host_write", 5 * 64), ("alloc", 0), ("fault_all", 0),
        ("kernel_write", 0), ("writeback_one", 0), ("writeback_all", 0),
        ("release", 0), ("host_write", size - 1), ("alloc", 0),
        ("fault_one", 0), ("fault_all", 0), ("kernel_write", 0),
        ("drop", 0), ("alloc", 0), ("fault_all", 0), ("kernel_write", 0),
        ("discard", 0), ("release", 0),
    ]
    for op, arg in script:
        _apply(op, arg, pte, ref)
        pte.check_invariants()
        _assert_equivalent(pte, ref)


# ---------------------------------------------------------------------------
# the payoff: interned state for multi-GiB entries
# ---------------------------------------------------------------------------
def test_multi_gib_entry_state_is_interned():
    """A 16 GiB entry at 1 MiB chunks is 16384 chunks.  As objects that
    was ~16k allocations of ~88 bytes (>1.4 MiB); as bit-vectors it is
    three integers of ~2 KiB each."""
    size = 16 * 1024 * MIB
    pte = PageTableEntry(0x7000_0000_0000, size)
    pte.configure_chunks(1 * MIB)
    assert pte._nchunks == 16384
    pte.host_write(size // 2)
    pte.on_device_allocated(0x1000)
    for run in pte.fault_runs():
        pte.complete_fault(run)
    pte.kernel_write(1.0)
    footprint = (
        sys.getsizeof(pte._valid_bm)
        + sys.getsizeof(pte._dev_bm)
        + sys.getsizeof(pte._swap_bm)
    )
    # 16384 bits ≈ 2 KiB per vector; allow generous interpreter slack.
    assert footprint < 16 * 1024, footprint
    # And the vectorized scans stay exact at this scale.
    assert pte.fault_bytes() == 0
    assert pte.dirty_bytes() == size // 2
    assert pte.writeback_runs() == [(0, size // 2)]
    assert pte.device_current_runs() == [(0, size // 2)]


def test_full_cover_runs_roundtrip_multi_gib():
    pte = PageTableEntry(0x7000_0000_0000, 4 * 1024 * MIB + 123)
    pte.configure_chunks(2 * MIB)
    pte.host_write()  # everything
    pte.on_device_allocated(0x1000)
    runs = pte.fault_runs()
    assert runs == [(0, pte.size)]
    for run in runs:
        pte.complete_fault(run)
    assert pte.fault_runs() == []
    assert not pte.to_copy_2dev
