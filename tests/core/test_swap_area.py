"""Tests for the host swap area."""

import pytest

from repro.core.errors import RuntimeApiError, RuntimeErrorCode
from repro.core.memory.swap import SwapArea

MIB = 1024**2


def test_allocate_release_accounting():
    swap = SwapArea(100 * MIB)
    p = swap.allocate(30 * MIB)
    assert swap.used_bytes == 30 * MIB
    assert swap.free_bytes == 70 * MIB
    swap.release(p)
    assert swap.used_bytes == 0


def test_exhaustion_is_table1_error():
    swap = SwapArea(10 * MIB)
    swap.allocate(8 * MIB)
    with pytest.raises(RuntimeApiError) as e:
        swap.allocate(4 * MIB)
    assert e.value.code == RuntimeErrorCode.SWAP_ALLOCATION_FAILED


def test_release_unknown_is_table1_error():
    swap = SwapArea(10 * MIB)
    with pytest.raises(RuntimeApiError) as e:
        swap.release(0x123)
    assert e.value.code == RuntimeErrorCode.SWAP_DEALLOCATION_FAILED


def test_invalid_size_rejected():
    swap = SwapArea(10 * MIB)
    with pytest.raises(RuntimeApiError):
        swap.allocate(0)
    with pytest.raises(RuntimeApiError):
        swap.allocate(-1)


def test_peak_tracking():
    swap = SwapArea(100 * MIB)
    a = swap.allocate(40 * MIB)
    b = swap.allocate(40 * MIB)
    swap.release(a)
    swap.release(b)
    assert swap.peak_used == 80 * MIB
    assert swap.used_bytes == 0


def test_distinct_pointers():
    swap = SwapArea(100 * MIB)
    assert swap.allocate(MIB) != swap.allocate(MIB)


def test_blocks_never_overlap():
    """Regression: a fixed per-block stride let blocks larger than the
    stride alias the next block's address range."""
    swap = SwapArea(16 * 1024**3)
    sizes = [6 * 1024**3, 5 * 1024**3, MIB, 3 * MIB]
    blocks = sorted((swap.allocate(s), s) for s in sizes)
    for (ptr, size), (next_ptr, _next_size) in zip(blocks, blocks[1:]):
        assert ptr + size <= next_ptr, (
            f"block [0x{ptr:x}, +{size}) overlaps block at 0x{next_ptr:x}"
        )


def test_huge_block_then_neighbor_distinct_ranges():
    swap = SwapArea(10 * 1024**3)
    big = swap.allocate(5 * 1024**3)  # > the old 4 GiB stride
    small = swap.allocate(MIB)
    assert small >= big + 5 * 1024**3


def test_transfer_timing_helpers():
    swap = SwapArea(100 * MIB, host_memcpy_bps=8e9)
    assert swap.write_seconds(8_000_000_000) == pytest.approx(1.0)
    assert swap.read_seconds(4_000_000_000) == pytest.approx(0.5)


def test_capacity_validation():
    with pytest.raises(ValueError):
        SwapArea(0)
