"""OffloadManager.choose_peer edge cases (paper §4.7)."""

from repro.core import NodeRuntime, RuntimeConfig
from repro.core.context import Context, ContextState
from repro.sim import Environment
from repro.simcuda import CudaDriver, TESLA_C2050


def _node(env, name, vgpus=1, margin=0.5):
    driver = CudaDriver(env, [TESLA_C2050])
    node = NodeRuntime(
        env, driver,
        RuntimeConfig(vgpus_per_device=vgpus, offload_enabled=True,
                      offload_load_margin=margin),
        name=name,
    )
    env.process(node.start())
    env.run()  # spawn the vGPUs so capacities are real
    return node


def _load(env, node, n):
    """Fabricate n live (pending) contexts on a node."""
    for i in range(n):
        node.dispatcher.contexts.append(Context(env, owner=f"{node.name}-c{i}"))


def test_no_peers_returns_none():
    env = Environment()
    node = _node(env, "solo")
    _load(env, node, 5)  # overloaded, but nowhere to go
    assert node.offloader.choose_peer() is None


def test_unsaturated_local_gpus_keep_the_job():
    env = Environment()
    a, b = _node(env, "a", vgpus=4), _node(env, "b")
    a.offloader.add_peer(b)
    _load(env, a, 2)  # 2 live < 4 vGPUs: not saturated
    assert a.offloader.choose_peer() is None


def test_all_peers_equally_saturated_returns_none():
    env = Environment()
    a, b, c = _node(env, "a"), _node(env, "b"), _node(env, "c")
    a.offloader.add_peer(b)
    a.offloader.add_peer(c)
    _load(env, a, 3)
    _load(env, b, 4)
    _load(env, c, 4)
    # projected local load (3+1)/1 = 4 vs best peer 4 + 0.5 margin:
    # shipping the job would not beat keeping it.
    assert a.offloader.choose_peer() is None


def test_margin_blocks_marginal_wins():
    env = Environment()
    a, b = _node(env, "a", margin=2.0), _node(env, "b")
    a.offloader.add_peer(b)
    _load(env, a, 2)  # projected (2+1)/1 = 3
    _load(env, b, 1)  # peer load 1; 3 <= 1 + 2.0 margin
    assert a.offloader.choose_peer() is None


def test_least_loaded_peer_wins():
    env = Environment()
    a = _node(env, "a")
    busy, idle = _node(env, "busy"), _node(env, "idle")
    a.offloader.add_peer(busy)
    a.offloader.add_peer(idle)
    _load(env, a, 3)
    _load(env, busy, 2)
    peer = a.offloader.choose_peer()
    assert peer is not None and peer.runtime is idle


def test_tie_breaks_to_first_registered_peer():
    env = Environment()
    a = _node(env, "a")
    p1, p2 = _node(env, "p1"), _node(env, "p2")
    a.offloader.add_peer(p1)
    a.offloader.add_peer(p2)
    _load(env, a, 3)  # both peers idle and tied at load 0
    peer = a.offloader.choose_peer()
    assert peer is not None and peer.runtime is p1


def test_done_contexts_do_not_count_as_load():
    env = Environment()
    a, b = _node(env, "a"), _node(env, "b")
    a.offloader.add_peer(b)
    _load(env, a, 3)
    for ctx in a.dispatcher.contexts:
        ctx.state = ContextState.DONE
    # All local work finished: the node is not saturated.
    assert a.offloader.choose_peer() is None


def test_zero_capacity_node_always_offloads():
    """A node whose every device failed (capacity 0) hands work away to
    any finite-load peer."""
    env = Environment()
    a, b = _node(env, "a"), _node(env, "b")
    a.offloader.add_peer(b)
    a.driver.devices[0].fail()
    a.note_device_failure(a.driver.devices[0])
    _load(env, a, 1)
    peer = a.offloader.choose_peer()
    assert peer is not None and peer.runtime is b
