"""Heterogeneous accelerators (§7 future work: Intel MIC support).

The runtime is device-agnostic: any accelerator with separate memory and
a library-call interface is "a GPU" to it.  These tests run the runtime
over a node mixing a Tesla C2050 with an Intel MIC.
"""

from repro.core import RuntimeConfig
from repro.simcuda import INTEL_MIC, KernelDescriptor, TESLA_C2050

from tests.core.conftest import Harness, MIB


def kernel(seconds, name="k"):
    return KernelDescriptor(
        name=name, flops=seconds * TESLA_C2050.effective_gflops * 1e9
    )


def test_mic_spec_properties():
    assert INTEL_MIC.core_count == 61 * 16
    assert INTEL_MIC.memory_bytes == 8 * 1024**3
    assert INTEL_MIC.max_contexts == 16
    # In the same performance league as a C2050 for these models.
    assert 0.5 < INTEL_MIC.relative_speed(TESLA_C2050) < 3.0


def test_jobs_spread_across_gpu_and_mic():
    h = Harness(
        specs=[TESLA_C2050, INTEL_MIC],
        config=RuntimeConfig(vgpus_per_device=2),
    )
    done = []

    def app(name):
        fe = h.frontend(name)
        yield from fe.open()
        k = kernel(1.0, f"{name}-k")
        a = yield from fe.cuda_malloc(64 * MIB)
        yield from fe.cuda_memcpy_h2d(a, 64 * MIB)
        yield from fe.launch_kernel(k, [a])
        yield from fe.cuda_thread_exit()
        done.append(name)

    for i in range(2):
        h.spawn(app(f"j{i}"))
    h.run()
    assert len(done) == 2
    # Both accelerators did work (placement balances across them).
    assert h.driver.devices[0].kernels_executed == 1
    assert h.driver.devices[1].kernels_executed == 1


def test_migration_between_gpu_and_mic():
    """Dynamic binding works across accelerator families too."""
    from repro.simcuda import QUADRO_2000

    h = Harness(
        specs=[INTEL_MIC, QUADRO_2000],
        config=RuntimeConfig(
            vgpus_per_device=1, migration_enabled=True, migration_min_speedup=1.5
        ),
    )
    results = {}

    def blocker():
        fe = h.frontend("blocker")
        yield from fe.open()
        k = kernel(0.4, "b-k")
        a = yield from fe.cuda_malloc(4 * MIB)
        yield from fe.launch_kernel(k, [a])
        yield from fe.cuda_thread_exit()

    def long_job():
        yield h.env.timeout(0.3)
        fe = h.frontend("long")
        yield from fe.open()
        k = kernel(0.4, "l-k")
        a = yield from fe.cuda_malloc(32 * MIB)
        for _ in range(6):
            yield from fe.launch_kernel(k, [a])
            yield h.env.timeout(0.4)
        yield from fe.cuda_thread_exit()
        results["long"] = h.env.now

    h.spawn(blocker())
    h.spawn(long_job())
    h.run()
    assert "long" in results
    # The long job started on the slow Quadro (MIC was blocked) and
    # migrated to the much faster MIC once it freed.
    assert h.stats.migrations >= 1
    assert h.driver.devices[0].kernels_executed > 1  # MIC ran migrated work
