"""Runtime monitoring tests."""

import pytest

from repro.core.monitor import RuntimeMonitor, node_report

from tests.core.conftest import Harness, MIB


def test_node_report_snapshot():
    h = Harness()
    h.run(until=1.0)
    report = node_report(h.runtime)
    assert report["gpus"] == 1
    assert report["vgpus_total"] == 4
    assert report["vgpus_active"] == 0
    assert report["load_per_vgpu"] == 0.0
    assert report["swap_used_bytes"] == 0
    assert "Tesla C2050" in report["gpu_names"][0]


def test_monitor_samples_utilization():
    h = Harness()
    monitor = RuntimeMonitor(h.runtime)
    monitor.start(period=0.5, horizon=10.0)
    h.spawn(h.simple_app("busy", kernel_seconds=1.0, kernel_count=3))
    h.run()
    device_id = h.driver.devices[0].device_id
    assert len(monitor.samples) >= 5
    # Some sample saw the GPU busy; the mean reflects ~3s of kernels.
    assert any(s.gpu_utilization[device_id] > 0.5 for s in monitor.samples)
    assert 0.0 < monitor.mean_utilization(device_id) <= 1.0


def test_monitor_tracks_memory_and_swap():
    h = Harness()
    monitor = RuntimeMonitor(h.runtime)
    monitor.start(period=0.25, horizon=8.0)
    h.spawn(h.simple_app("mem", alloc_mib=256, kernel_seconds=1.0))
    h.run()
    assert monitor.peak_swap_bytes() >= 256 * MIB
    device_id = h.driver.devices[0].device_id
    assert any(s.gpu_memory_used[device_id] > 256 * MIB for s in monitor.samples)


def test_monitor_stop_ends_sampling():
    h = Harness()
    monitor = RuntimeMonitor(h.runtime)
    monitor.start(period=0.5)  # no horizon: must be stopped
    h.spawn(h.simple_app("quick", kernel_seconds=0.5))

    def stopper():
        yield h.env.timeout(3.0)
        monitor.stop()

    h.spawn(stopper())
    h.run()  # terminates because the monitor stops
    assert monitor.samples


def test_monitor_period_validation():
    h = Harness()
    monitor = RuntimeMonitor(h.runtime)
    with pytest.raises(ValueError):
        monitor.start(period=0)


def test_mean_utilization_is_time_weighted():
    """Samples weigh by the interval they cover: a dense burst of samples
    around a busy window must not inflate the mean over a long idle tail."""
    h = Harness()
    monitor = RuntimeMonitor(h.runtime)
    h.spawn(h.simple_app("busy", kernel_seconds=2.0))

    def sampler():
        yield h.env.timeout(3.0)
        monitor.take_sample()  # short window containing the kernel burst
        yield h.env.timeout(27.0)
        monitor.take_sample()  # long idle window

    h.spawn(sampler())
    h.run()
    device_id = h.driver.devices[0].device_id
    s1, s2 = monitor.samples
    assert s1.interval == pytest.approx(3.0)
    assert s2.interval == pytest.approx(27.0)
    assert s1.gpu_utilization[device_id] > s2.gpu_utilization[device_id]
    expected = (
        s1.gpu_utilization[device_id] * s1.interval
        + s2.gpu_utilization[device_id] * s2.interval
    ) / (s1.interval + s2.interval)
    unweighted = (
        s1.gpu_utilization[device_id] + s2.gpu_utilization[device_id]
    ) / 2
    assert monitor.mean_utilization(device_id) == pytest.approx(expected)
    assert monitor.mean_utilization(device_id) < unweighted


def test_stop_takes_no_final_sample():
    """stop() mid-period must not record one more sample on wake-up."""
    h = Harness()
    monitor = RuntimeMonitor(h.runtime)
    monitor.start(period=1.0)

    def stopper():
        yield h.env.timeout(2.5)
        monitor.stop()

    h.spawn(stopper())
    h.run()
    assert [s.at for s in monitor.samples] == [1.0, 2.0]


def test_start_while_running_raises():
    h = Harness()
    monitor = RuntimeMonitor(h.runtime)
    monitor.start(period=1.0, horizon=5.0)
    with pytest.raises(RuntimeError):
        monitor.start(period=1.0)
    h.run()  # sampler retires at its horizon...
    monitor.start(period=1.0, horizon=1.0)  # ...after which restart is fine
    h.run()


def test_take_sample_on_demand():
    h = Harness()
    h.run(until=1.0)
    monitor = RuntimeMonitor(h.runtime)
    s = monitor.take_sample()
    assert s.at == 1.0
    assert s.total_vgpus == 4
    assert monitor.peak_waiting() == 0
