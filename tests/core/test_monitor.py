"""Runtime monitoring tests."""

import pytest

from repro.core.monitor import RuntimeMonitor, node_report

from tests.core.conftest import Harness, MIB


def test_node_report_snapshot():
    h = Harness()
    h.run(until=1.0)
    report = node_report(h.runtime)
    assert report["gpus"] == 1
    assert report["vgpus_total"] == 4
    assert report["vgpus_active"] == 0
    assert report["load_per_vgpu"] == 0.0
    assert report["swap_used_bytes"] == 0
    assert "Tesla C2050" in report["gpu_names"][0]


def test_monitor_samples_utilization():
    h = Harness()
    monitor = RuntimeMonitor(h.runtime)
    monitor.start(period=0.5, horizon=10.0)
    h.spawn(h.simple_app("busy", kernel_seconds=1.0, kernel_count=3))
    h.run()
    device_id = h.driver.devices[0].device_id
    assert len(monitor.samples) >= 5
    # Some sample saw the GPU busy; the mean reflects ~3s of kernels.
    assert any(s.gpu_utilization[device_id] > 0.5 for s in monitor.samples)
    assert 0.0 < monitor.mean_utilization(device_id) <= 1.0


def test_monitor_tracks_memory_and_swap():
    h = Harness()
    monitor = RuntimeMonitor(h.runtime)
    monitor.start(period=0.25, horizon=8.0)
    h.spawn(h.simple_app("mem", alloc_mib=256, kernel_seconds=1.0))
    h.run()
    assert monitor.peak_swap_bytes() >= 256 * MIB
    device_id = h.driver.devices[0].device_id
    assert any(s.gpu_memory_used[device_id] > 256 * MIB for s in monitor.samples)


def test_monitor_stop_ends_sampling():
    h = Harness()
    monitor = RuntimeMonitor(h.runtime)
    monitor.start(period=0.5)  # no horizon: must be stopped
    h.spawn(h.simple_app("quick", kernel_seconds=0.5))

    def stopper():
        yield h.env.timeout(3.0)
        monitor.stop()

    h.spawn(stopper())
    h.run()  # terminates because the monitor stops
    assert monitor.samples


def test_monitor_period_validation():
    h = Harness()
    monitor = RuntimeMonitor(h.runtime)
    with pytest.raises(ValueError):
        monitor.start(period=0)


def test_take_sample_on_demand():
    h = Harness()
    h.run(until=1.0)
    monitor = RuntimeMonitor(h.runtime)
    s = monitor.take_sample()
    assert s.at == 1.0
    assert s.total_vgpus == 4
    assert monitor.peak_waiting() == 0
