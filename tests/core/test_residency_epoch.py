"""The page table's residency epoch and the cost model's memoization.

Every PTE state transition (and entry create/remove) bumps
``PageTable.epoch``; :class:`TransferCostModel` caches its O(all-PTEs)
aggregates for exactly one epoch, so pricing every device on every
binding decision stops rescanning an unchanged table — while any real
residency change invalidates the caches immediately.
"""

import types

from repro.core.memory.costmodel import TransferCostModel
from repro.core.memory.page_table import PageTable


class Ctx:
    last_launch_vptrs = ()
    cache_vgpu = None
    vgpu = None
    estimated_gpu_seconds = None
    gpu_seconds_used = 0.0


# ---------------------------------------------------------------------------
# epoch bumps
# ---------------------------------------------------------------------------

def test_epoch_bumps_on_entry_lifecycle():
    pt = PageTable()
    ctx = Ctx()
    e0 = pt.epoch
    pte = pt.create_entry(ctx, 100)
    assert pt.epoch > e0
    e1 = pt.epoch
    pt.remove_entry(ctx, pte)
    assert pt.epoch > e1


def test_epoch_bumps_on_state_transitions():
    pt = PageTable()
    ctx = Ctx()
    pte = pt.create_entry(ctx, 100)
    for mutate in (
        lambda: pte.on_host_write(),
        lambda: pte.on_device_allocated(0x1000),
        lambda: pte.on_copied_to_device(),
        lambda: pte.on_kernel_write(now=1.0),
        lambda: pte.on_copied_to_swap(),
        lambda: pte.on_device_released(),
    ):
        before = pt.epoch
        mutate()
        assert pt.epoch > before, mutate


def test_epoch_bumps_on_drop_context():
    pt = PageTable()
    ctx = Ctx()
    pt.create_entry(ctx, 100)
    before = pt.epoch
    pt.drop_context(ctx)
    assert pt.epoch > before


def test_relocate_device_bumps_and_moves():
    pt = PageTable()
    ctx = Ctx()
    pte = pt.create_entry(ctx, 100)
    pte.on_host_write()
    pte.on_device_allocated(0x1000, device_id=0)
    before = pt.epoch
    pte.relocate_device(0x9000, 3)
    assert pt.epoch > before
    assert pte.device_ptr == 0x9000
    assert pte.device_id == 3


# ---------------------------------------------------------------------------
# memoized cost-model aggregates
# ---------------------------------------------------------------------------

def _model(pt):
    config = types.SimpleNamespace(migration_penalty_s=0.0)
    swap = types.SimpleNamespace(host_memcpy_bps=1e9)
    scheduler = types.SimpleNamespace(active_per_device=lambda: {})
    return TransferCostModel(config, pt, swap, scheduler)


def test_working_set_cached_within_one_epoch():
    pt = PageTable()
    ctx = Ctx()
    pt.create_entry(ctx, 100)
    model = _model(pt)
    ws1 = model.working_set(ctx)
    ws2 = model.working_set(ctx)
    assert ws1 is ws2  # identical list object: served from the cache


def test_residency_change_invalidates_cache():
    pt = PageTable()
    ctx = Ctx()
    pte = pt.create_entry(ctx, 100)
    model = _model(pt)
    ws1 = model.working_set(ctx)
    pte.on_host_write()  # bumps the epoch
    ws2 = model.working_set(ctx)
    assert ws1 is not ws2


def test_dirty_fraction_tracks_epoch():
    pt = PageTable()
    ctx = Ctx()
    pte = pt.create_entry(ctx, 100)
    pte.on_host_write()
    pte.on_device_allocated(0x1000, device_id=0)
    pte.on_copied_to_device()
    model = _model(pt)
    device = types.SimpleNamespace(device_id=0)
    assert model._device_dirty_fraction(device) == 0.0
    pte.on_kernel_write(now=1.0)  # now dirty; epoch bumped
    assert model._device_dirty_fraction(device) == 1.0


def test_tables_without_epoch_get_no_stale_reuse():
    """Test doubles (plain namespaces) have no epoch: the model must
    recompute every time rather than serve a stale cache."""
    ctx = Ctx()
    entries = [types.SimpleNamespace(virtual_ptr=1, size=10)]
    fake = types.SimpleNamespace(entries_for=lambda c: list(entries))
    model = _model(fake)
    ws1 = model.working_set(ctx)
    ws2 = model.working_set(ctx)
    assert ws1 is not ws2  # no epoch -> no memoization
