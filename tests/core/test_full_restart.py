"""Full node-restart flow (paper §4.6: "Our mechanism can be combined
with BLCR in order to enable these mechanisms also after a full restart
of a node").

Sequence: run an application halfway → snapshot its context (the page
table + swap state + replay journal) → "restart": a brand-new
environment, driver and runtime → restore the snapshot → bind → replay →
the device state is reconstructed and the application can continue.
"""

import pytest

from repro.core import NodeRuntime, RuntimeConfig
from repro.core.checkpoint import restore_context, snapshot_context
from repro.core.context import Context, ContextState
from repro.sim import Environment
from repro.simcuda import CudaDriver, KernelDescriptor, TESLA_C2050

from tests.core.conftest import Harness, MIB


def make_snapshot(kernels_before_snapshot=3):
    """Run an app halfway on node #1 and capture it."""
    h = Harness()
    box = {}

    def app():
        fe = h.frontend("victim")
        yield from fe.open()
        k = KernelDescriptor(
            name="step", flops=0.3 * TESLA_C2050.effective_gflops * 1e9
        )
        a = yield from fe.cuda_malloc(64 * MIB)
        b = yield from fe.cuda_malloc(32 * MIB)
        yield from fe.cuda_memcpy_h2d(a, 64 * MIB)
        for _ in range(kernels_before_snapshot):
            yield from fe.launch_kernel(k, [a, b])
        ctx = h.runtime.dispatcher.contexts[0]
        box["snapshot"] = snapshot_context(h.memory, ctx)
        # The "node dies" here: no clean exit.

    h.spawn(app())
    h.run()
    return box["snapshot"]


def test_restart_restores_and_replays():
    snap = make_snapshot()
    assert len(snap.journal) == 3  # three un-checkpointed kernels
    assert snap.total_bytes == 96 * MIB

    # --- the restarted node: a completely fresh world -------------------
    env = Environment()
    driver = CudaDriver(env, [TESLA_C2050])
    runtime = NodeRuntime(env, driver, RuntimeConfig(vgpus_per_device=2))
    env.process(runtime.start())
    env.run(until=1.0)

    ctx = Context(env, owner="restored")
    translation = restore_context(runtime.memory, ctx, snap)
    assert len(translation) == 2
    assert runtime.memory.swap.used_bytes == 96 * MIB
    assert len(ctx.replay_journal) == 3

    def resume():
        # The dispatcher would do this on the restored connection's first
        # call: bind, then replay the journal.
        yield from runtime.scheduler.request_binding(ctx)
        yield from runtime.memory.replay(ctx)

    p = env.process(resume())
    env.run(until=p)

    # Device state reconstructed: both buffers resident, kernels re-run.
    assert driver.devices[0].kernels_executed == 3
    assert runtime.stats.replayed_kernels == 3
    entries = runtime.memory.page_table.entries_for(ctx)
    assert len(entries) == 2
    assert all(pte.is_allocated for pte in entries)
    # The journal survives replay: the re-executed effects are still only
    # on the device (a second failure would replay again).
    assert len(ctx.replay_journal) == 3


def test_restart_then_continue_and_exit_cleanly():
    snap = make_snapshot(kernels_before_snapshot=2)

    env = Environment()
    driver = CudaDriver(env, [TESLA_C2050])
    runtime = NodeRuntime(env, driver, RuntimeConfig(vgpus_per_device=2))
    env.process(runtime.start())
    env.run(until=1.0)

    ctx = Context(env, owner="resumed")
    translation = restore_context(runtime.memory, ctx, snap)
    new_ptrs = list(translation.values())
    k = KernelDescriptor(name="cont", flops=0.2 * TESLA_C2050.effective_gflops * 1e9)

    def resume_and_finish():
        yield from runtime.scheduler.request_binding(ctx)
        yield from runtime.memory.replay(ctx)
        # ...and the application continues past the checkpoint.
        yield from runtime.memory.prepare_and_launch(ctx, k, new_ptrs)
        yield from runtime.memory.copy_d2h(ctx, new_ptrs[0], 16 * MIB)
        yield from runtime.memory.release_context(ctx)
        runtime.scheduler.release(ctx, "exit")
        ctx.state = ContextState.DONE

    p = env.process(resume_and_finish())
    env.run(until=p)
    assert runtime.memory.swap.used_bytes == 0
    assert driver.devices[0].kernels_executed == 3  # 2 replayed + 1 new
    assert all(v.idle for v in runtime.scheduler.vgpus)


def test_snapshot_after_checkpoint_has_empty_journal():
    h = Harness()
    box = {}

    def app():
        fe = h.frontend("ck")
        yield from fe.open()
        k = KernelDescriptor(name="s", flops=0.2 * TESLA_C2050.effective_gflops * 1e9)
        a = yield from fe.cuda_malloc(16 * MIB)
        yield from fe.launch_kernel(k, [a])
        yield from fe.checkpoint()  # explicit user checkpoint (§4.6)
        ctx = h.runtime.dispatcher.contexts[0]
        box["snap"] = snapshot_context(h.memory, ctx)

    h.spawn(app())
    h.run()
    assert box["snap"].journal == []  # nothing to replay after restore
