"""Adversarial-tenant tests (paper §7 mentions security concerns as
future work; isolation, however, is a §2 objective and must hold against
misbehaving applications, not just polite ones)."""

import pytest

from repro.core import RuntimeConfig
from repro.core.errors import RuntimeApiError, RuntimeErrorCode
from repro.simcuda import KernelDescriptor, TESLA_C2050

from tests.core.conftest import Harness, MIB


def kernel(seconds=0.2, name="k"):
    return KernelDescriptor(
        name=name, flops=seconds * TESLA_C2050.effective_gflops * 1e9
    )


def test_tenant_cannot_free_anothers_buffer():
    h = Harness(config=RuntimeConfig(vgpus_per_device=2))
    shared = {}
    outcome = {}

    def victim():
        fe = h.frontend("victim")
        yield from fe.open()
        shared["ptr"] = yield from fe.cuda_malloc(32 * MIB)
        yield h.env.timeout(1.0)
        # The buffer must still be intact afterwards.
        yield from fe.cuda_memcpy_h2d(shared["ptr"], 32 * MIB)
        yield from fe.cuda_free(shared["ptr"])
        yield from fe.cuda_thread_exit()
        outcome["victim"] = "ok"

    def attacker():
        fe = h.frontend("attacker")
        yield from fe.open()
        yield h.env.timeout(0.5)
        with pytest.raises(RuntimeApiError) as e:
            yield from fe.cuda_free(shared["ptr"])
        assert e.value.code == RuntimeErrorCode.NO_VALID_PTE
        with pytest.raises(RuntimeApiError):
            yield from fe.cuda_memcpy_d2h(shared["ptr"], 32 * MIB)
        with pytest.raises(RuntimeApiError):
            yield from fe.launch_kernel(kernel(), [shared["ptr"]])
        yield from fe.cuda_thread_exit()
        outcome["attacker"] = "contained"

    h.spawn(victim())
    h.spawn(attacker())
    h.run()
    assert outcome == {"victim": "ok", "attacker": "contained"}


def test_allocation_bomb_does_not_break_neighbours():
    """A tenant exhausting the swap area gets errors; a neighbour's work
    is unaffected."""
    h = Harness(config=RuntimeConfig(vgpus_per_device=2))
    h.memory.swap.capacity_bytes = 2 * 1024**3
    outcome = {}

    def bomber():
        fe = h.frontend("bomber")
        yield from fe.open()
        held = []
        errors = 0
        for _ in range(40):
            try:
                held.append((yield from fe.cuda_malloc(100 * MIB)))
            except RuntimeApiError as exc:
                assert exc.code == RuntimeErrorCode.SWAP_ALLOCATION_FAILED
                errors += 1
                break
        assert errors == 1
        for ptr in held:
            yield from fe.cuda_free(ptr)
        yield from fe.cuda_thread_exit()
        outcome["bomber"] = "errored-and-released"

    def neighbour():
        yield h.env.timeout(0.2)
        fe = h.frontend("neighbour")
        yield from fe.open()
        k = kernel(0.3, "n-k")
        a = yield from fe.cuda_malloc(16 * MIB)
        yield from fe.launch_kernel(k, [a])
        yield from fe.cuda_free(a)
        yield from fe.cuda_thread_exit()
        outcome["neighbour"] = "ok"

    h.spawn(bomber())
    h.spawn(neighbour())
    h.run()
    assert outcome["neighbour"] == "ok"
    assert h.memory.swap.used_bytes == 0


def test_bad_calls_never_reach_the_device():
    """Out-of-bounds copies, unknown pointers and bogus launches are all
    absorbed in the runtime layer — the device sees zero traffic from
    them (§4.5 'avoiding overloading the GPU with erroneous calls')."""
    h = Harness()
    device = h.driver.devices[0]

    def abuser():
        fe = h.frontend("abuser")
        yield from fe.open()
        a = yield from fe.cuda_malloc(MIB)
        bad_calls = 0
        for attempt in (
            lambda: fe.cuda_memcpy_h2d(a, 10 * MIB),     # beyond bounds
            lambda: fe.cuda_memcpy_h2d(0x1234, MIB),     # unknown ptr
            lambda: fe.cuda_memcpy_d2h(0x1234, MIB),
            lambda: fe.cuda_free(0xABCD),
            lambda: fe.launch_kernel(kernel(), [0x999]),
        ):
            try:
                yield from attempt()
            except RuntimeApiError:
                bad_calls += 1
        assert bad_calls == 5
        yield from fe.cuda_thread_exit()

    p = h.spawn(abuser())
    h.run(until=p)
    assert device.kernels_executed == 0
    assert device.bytes_copied == 0
    assert h.stats.bad_calls_detected == 5


def test_connection_flood_is_absorbed():
    """Dozens of connections that never launch anything: they must not
    consume vGPUs or wedge the dispatcher."""
    h = Harness(config=RuntimeConfig(vgpus_per_device=2))
    done = []

    def idler(i):
        fe = h.frontend(f"idler{i}")
        yield from fe.open()
        a = yield from fe.cuda_malloc(MIB)
        yield h.env.timeout(0.5)
        yield from fe.cuda_free(a)
        yield from fe.cuda_thread_exit()
        done.append(i)

    def worker():
        fe = h.frontend("worker")
        yield from fe.open()
        k = kernel(0.3, "w-k")
        a = yield from fe.cuda_malloc(8 * MIB)
        yield from fe.launch_kernel(k, [a])
        yield from fe.cuda_thread_exit()
        done.append("worker")

    for i in range(40):
        h.spawn(idler(i))
    h.spawn(worker())
    h.run()
    assert len(done) == 41
    # Idlers never bound a vGPU (binding is lazy, at first launch).
    assert h.stats.bindings == 1


def test_oversized_kernel_is_an_application_error_not_a_crash():
    h = Harness()  # single 3 GiB C2050

    def glutton():
        fe = h.frontend("glutton")
        yield from fe.open()
        huge = yield from fe.cuda_malloc(5 * 1024**3)  # > any device
        with pytest.raises(RuntimeApiError) as e:
            yield from fe.launch_kernel(kernel(), [huge])
        assert e.value.code == RuntimeErrorCode.KERNEL_FOOTPRINT_TOO_LARGE
        yield from fe.cuda_free(huge)
        yield from fe.cuda_thread_exit()
        return True

    p = h.spawn(glutton())
    h.run(until=p)
    assert p.value is True
    assert all(v.idle for v in h.scheduler.vgpus)
