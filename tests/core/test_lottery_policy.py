"""Lottery scheduling: ticket-weighted proportional-share draws."""

from types import SimpleNamespace

from repro.core import RuntimeConfig
from repro.core.policies import LotteryPolicy, POLICY_NAMES, make_policy
from repro.sim.rng import RngStreams

from tests.core.conftest import Harness, MIB
from tests.core.test_scheduler_policies import job


def waiter(context_id, weight=None):
    tenant = None if weight is None else SimpleNamespace(weight=weight)
    return SimpleNamespace(context_id=context_id, tenant=tenant)


def test_registered():
    assert "lottery" in POLICY_NAMES
    assert isinstance(make_policy("lottery"), LotteryPolicy)
    RuntimeConfig(policy="lottery")  # config validation accepts it


def test_same_seed_same_schedule():
    waiting = [waiter(i, weight=1.0 + i) for i in range(5)]
    a, b = LotteryPolicy(seed=7), LotteryPolicy(seed=7)
    picks_a = [a.pick_next(waiting).context_id for _ in range(50)]
    picks_b = [b.pick_next(waiting).context_id for _ in range(50)]
    assert picks_a == picks_b
    # a different seed diverges (the draws actually depend on the seed)
    c = LotteryPolicy(seed=8)
    assert [c.pick_next(waiting).context_id for _ in range(50)] != picks_a


def test_single_waiter_needs_no_draw():
    policy = LotteryPolicy(seed=0)
    only = waiter(1)
    before = policy.rng.bit_generator.state["state"]["state"]
    assert policy.pick_next([only]) is only
    assert policy.pick_next([]) is None
    assert policy.rng.bit_generator.state["state"]["state"] == before


def test_draws_are_ticket_proportional():
    """weight-3 vs weight-1: the heavy tenant wins ~75% of lotteries."""
    heavy, light = waiter(1, weight=3.0), waiter(2, weight=1.0)
    policy = LotteryPolicy(seed=42)
    n = 4000
    wins = sum(
        1 for _ in range(n) if policy.pick_next([heavy, light]) is heavy
    )
    assert abs(wins / n - 0.75) < 0.03


def test_tenantless_waiters_hold_one_ticket():
    named, anon = waiter(1, weight=2.0), waiter(2)
    policy = LotteryPolicy(seed=3)
    n = 3000
    wins = sum(1 for _ in range(n) if policy.pick_next([named, anon]) is named)
    assert abs(wins / n - 2.0 / 3.0) < 0.03


def test_rng_stream_is_the_named_lottery_stream():
    """Seed discipline: draws come from RngStreams(seed).stream('lottery'),
    so other consumers of the same tree cannot perturb the schedule."""
    expected = RngStreams(11).stream("lottery")
    policy = LotteryPolicy(seed=11)
    waiting = [waiter(i) for i in range(4)]
    picks = [policy.pick_next(waiting).context_id for _ in range(20)]
    replay = []
    for _ in range(20):
        draw = expected.random() * len(waiting)
        replay.append(waiting[min(int(draw), 3)].context_id)
    assert picks == replay


def test_end_to_end_all_jobs_complete():
    h = Harness(config=RuntimeConfig(policy="lottery", vgpus_per_device=1))
    done = []
    for i in range(4):
        h.spawn(job(h, f"j{i}", kernel_s=0.2, results=done))
    h.run()
    assert sorted(done) == [f"j{i}" for i in range(4)]
