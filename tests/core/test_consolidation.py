"""Kernel consolidation (space-sharing) tests — the §6 integration path.

With consolidation enabled, kernels that can only fill part of the
device co-run; aggregate demand beyond the SM count queues FIFO.
"""

import pytest

from repro.core import RuntimeConfig
from repro.simcuda import CudaDriver, KernelDescriptor, KernelLaunch, TESLA_C2050
from repro.sim import Environment

from tests.core.conftest import Harness, MIB


def half_kernel(seconds=1.0, name="half"):
    """Fills 7 of the C2050's 14 SMs for ``seconds``."""
    return KernelDescriptor(
        name=name,
        flops=seconds * TESLA_C2050.effective_gflops * 0.5 * 1e9,
        sm_demand=7,
    )


# ---------------------------------------------------------------------------
# driver level
# ---------------------------------------------------------------------------

def run_two_kernels(concurrent: bool):
    env = Environment()
    driver = CudaDriver(env, [TESLA_C2050])
    driver.concurrent_kernels = concurrent
    k = half_kernel()
    finish = {}

    def app(name):
        ctx = yield from driver.create_context(driver.devices[0])
        a = yield from driver.malloc(ctx, MIB)
        yield from driver.launch(ctx, KernelLaunch.simple(k, [a]))
        finish[name] = env.now

    env.process(app("a"))
    env.process(app("b"))
    env.run()
    return finish


def test_consolidation_corun_half_device_kernels():
    serial = run_two_kernels(concurrent=False)
    shared = run_two_kernels(concurrent=True)
    # Serialized: ~2 s apart.  Consolidated: both finish together.
    assert max(serial.values()) - min(serial.values()) == pytest.approx(1.0, rel=0.05)
    assert max(shared.values()) - min(shared.values()) < 0.01
    assert max(shared.values()) < max(serial.values())


def test_consolidation_queues_when_demand_exceeds_sms():
    """Three 7-SM kernels on a 14-SM device: two co-run, the third waits."""
    env = Environment()
    driver = CudaDriver(env, [TESLA_C2050])
    driver.concurrent_kernels = True
    k = half_kernel()
    finish = []

    def app(i):
        ctx = yield from driver.create_context(driver.devices[0])
        a = yield from driver.malloc(ctx, MIB)
        yield from driver.launch(ctx, KernelLaunch.simple(k, [a]))
        finish.append(env.now)

    for i in range(3):
        env.process(app(i))
    env.run()
    finish.sort()
    assert finish[1] - finish[0] < 0.01  # first two together
    assert finish[2] - finish[1] == pytest.approx(1.0, rel=0.05)  # third waits


def test_exclusive_kernel_drains_the_device():
    """A kernel without sm_demand takes the whole device even under
    consolidation — partial kernels cannot co-run with it."""
    env = Environment()
    driver = CudaDriver(env, [TESLA_C2050])
    driver.concurrent_kernels = True
    full = KernelDescriptor(
        name="full", flops=1.0 * TESLA_C2050.effective_gflops * 1e9
    )
    part = half_kernel(seconds=0.2)
    finish = {}

    def app_full():
        ctx = yield from driver.create_context(driver.devices[0])
        a = yield from driver.malloc(ctx, MIB)
        yield from driver.launch(ctx, KernelLaunch.simple(full, [a]))
        finish["full"] = env.now

    def app_part():
        ctx = yield from driver.create_context(driver.devices[0])
        a = yield from driver.malloc(ctx, MIB)
        yield env.timeout(0.1)  # arrives while the full kernel runs
        yield from driver.launch(ctx, KernelLaunch.simple(part, [a]))
        finish["part"] = env.now

    env.process(app_full())
    env.process(app_part())
    env.run()
    assert finish["part"] > finish["full"]  # had to wait for the drain


def test_busy_accounting_stays_below_one():
    env = Environment()
    driver = CudaDriver(env, [TESLA_C2050])
    driver.concurrent_kernels = True
    k = half_kernel()

    def app():
        ctx = yield from driver.create_context(driver.devices[0])
        a = yield from driver.malloc(ctx, MIB)
        yield from driver.launch(ctx, KernelLaunch.simple(k, [a]))

    env.process(app())
    env.process(app())
    env.run()
    dev = driver.devices[0]
    assert dev.utilization(env.now) <= 1.0
    assert dev.kernels_executed == 2


# ---------------------------------------------------------------------------
# through the runtime
# ---------------------------------------------------------------------------

def test_runtime_consolidation_improves_small_kernel_throughput():
    def run(consolidation):
        h = Harness(
            config=RuntimeConfig(
                vgpus_per_device=4, kernel_consolidation=consolidation
            )
        )
        done = []

        def app(name):
            fe = h.frontend(name)
            yield from fe.open()
            k = half_kernel(seconds=0.5, name=f"{name}-k")
            a = yield from fe.cuda_malloc(8 * MIB)
            for _ in range(4):
                yield from fe.launch_kernel(k, [a])
            yield from fe.cuda_thread_exit()
            done.append(h.env.now)

        for i in range(4):
            h.spawn(app(f"j{i}"))
        h.run()
        return max(done)

    consolidated = run(True)
    serialized = run(False)
    # Two half-device kernels co-run: ~2× throughput for this workload.
    assert consolidated < serialized * 0.65
