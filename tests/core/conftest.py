"""Shared builders for core-runtime tests."""

import pytest

from repro.sim import Environment
from repro.simcuda import CudaDriver, FatBinary, KernelDescriptor, TESLA_C2050
from repro.core import Frontend, NodeRuntime, RuntimeConfig

MIB = 1024**2
GIB = 1024**3


class Harness:
    """One node runtime plus helpers to run simple applications on it."""

    def __init__(self, specs=None, config=None):
        self.env = Environment()
        self.driver = CudaDriver(self.env, specs or [TESLA_C2050])
        self.runtime = NodeRuntime(self.env, self.driver, config or RuntimeConfig())
        self.env.process(self.runtime.start())

    @property
    def memory(self):
        return self.runtime.memory

    @property
    def scheduler(self):
        return self.runtime.scheduler

    @property
    def stats(self):
        return self.runtime.stats

    def frontend(self, name="app", estimated_gpu_seconds=None, **kwargs):
        return Frontend(
            self.env,
            self.runtime.listener,
            name=name,
            estimated_gpu_seconds=estimated_gpu_seconds,
            **kwargs,
        )

    def spawn(self, gen, name=None):
        return self.env.process(gen, name=name)

    def run(self, until=None):
        return self.env.run(until=until)

    def simple_app(
        self,
        name="app",
        alloc_mib=64,
        kernel_seconds=0.5,
        kernel_count=1,
        cpu_phase_s=0.0,
        free_at_end=True,
    ):
        """An application: malloc → h2d → k kernels (with CPU gaps) → d2h →
        free → exit.  Returns (start, end) times."""

        def _app():
            fe = self.frontend(name)
            yield from fe.open()
            fatbin = FatBinary()
            kernel = KernelDescriptor(
                name=f"{name}-kernel",
                flops=kernel_seconds * TESLA_C2050.effective_gflops * 1e9,
            )
            handle = yield from fe.register_fat_binary(fatbin)
            yield from fe.register_function(handle, kernel)
            start = self.env.now
            size = alloc_mib * MIB
            ptr = yield from fe.cuda_malloc(size)
            yield from fe.cuda_memcpy_h2d(ptr, size)
            for _ in range(kernel_count):
                yield from fe.launch_kernel(kernel, [ptr])
                if cpu_phase_s:
                    yield self.env.timeout(cpu_phase_s)
            yield from fe.cuda_memcpy_d2h(ptr, size)
            if free_at_end:
                yield from fe.cuda_free(ptr)
            yield from fe.cuda_thread_exit()
            return (start, self.env.now)

        return _app()


@pytest.fixture
def harness():
    return Harness()
