"""Runtime odds and ends: CPU-phase reaping, load metrics, lifecycle."""

import pytest

from repro.core import NodeRuntime, RuntimeConfig
from repro.simcuda import CudaDriver, KernelDescriptor, TESLA_C2050
from repro.sim import Environment

from tests.core.conftest import Harness, MIB


def kernel(seconds, name="k"):
    return KernelDescriptor(
        name=name, flops=seconds * TESLA_C2050.effective_gflops * 1e9
    )


def test_config_serialized_helper():
    cfg = RuntimeConfig(vgpus_per_device=4, policy="sjf")
    ser = cfg.serialized()
    assert ser.vgpus_per_device == 1
    assert ser.policy == "sjf"
    assert cfg.vgpus_per_device == 4  # original untouched


def test_cpu_phase_reaper_unbinds_idle_tenant():
    """With more tenants than vGPUs and one tenant stuck in a long CPU
    phase, the reaper frees its vGPU for the waiting tenant."""
    h = Harness(
        config=RuntimeConfig(vgpus_per_device=1, unbind_on_cpu_phase_s=0.1)
    )
    order = []

    def thinker():
        fe = h.frontend("thinker")
        yield from fe.open()
        k = kernel(0.2, "think-k")
        a = yield from fe.cuda_malloc(8 * MIB)
        yield from fe.launch_kernel(k, [a])
        order.append(("thinker-gpu-done", h.env.now))
        yield h.env.timeout(5.0)  # long CPU phase while another waits
        yield from fe.launch_kernel(k, [a])
        yield from fe.cuda_thread_exit()
        order.append(("thinker-exit", h.env.now))

    def waiter():
        fe = h.frontend("waiter")
        yield from fe.open()
        k = kernel(0.2, "wait-k")
        a = yield from fe.cuda_malloc(8 * MIB)
        yield h.env.timeout(0.5)  # arrive during the thinker's CPU phase
        yield from fe.launch_kernel(k, [a])
        order.append(("waiter-gpu-done", h.env.now))
        yield from fe.cuda_thread_exit()

    h.spawn(thinker())
    h.spawn(waiter())
    h.run()
    names = [n for n, _ in order]
    # The waiter got the GPU *during* the thinker's 5 s CPU phase.
    assert names.index("waiter-gpu-done") < names.index("thinker-exit")
    waiter_done = dict(order)["waiter-gpu-done"]
    assert waiter_done < 5.0
    assert h.stats.unbindings >= 2


def test_reaper_does_not_fire_without_waiters():
    h = Harness(
        config=RuntimeConfig(vgpus_per_device=4, unbind_on_cpu_phase_s=0.05)
    )

    def lazy():
        fe = h.frontend("lazy")
        yield from fe.open()
        k = kernel(0.1)
        a = yield from fe.cuda_malloc(MIB)
        yield from fe.launch_kernel(k, [a])
        yield h.env.timeout(2.0)  # long CPU phase, nobody waiting
        yield from fe.launch_kernel(k, [a])
        yield from fe.cuda_thread_exit()

    h.spawn(lazy())
    h.run()
    # One bind for the whole life: the reaper never evicted it.
    assert h.stats.bindings == 1


def test_load_per_vgpu_counts_live_contexts():
    env = Environment()
    driver = CudaDriver(env, [TESLA_C2050])
    rt = NodeRuntime(env, driver, RuntimeConfig(vgpus_per_device=2))
    env.process(rt.start())
    env.run(until=1.0)
    assert rt.load_per_vgpu() == 0.0

    from repro.core import Frontend

    def app():
        fe = Frontend(env, rt.listener, name="x")
        yield from fe.open()
        yield env.timeout(3.0)
        yield from fe.cuda_thread_exit()

    env.process(app())
    env.run(until=2.0)
    assert rt.load_per_vgpu() == pytest.approx(0.5)  # 1 live ctx / 2 vGPUs
    env.run()
    assert rt.load_per_vgpu() == 0.0  # done contexts don't count


def test_runtime_start_idempotent():
    env = Environment()
    rt = NodeRuntime(env, CudaDriver(env, [TESLA_C2050]))
    env.process(rt.start())
    env.process(rt.start())  # second start: no-op
    env.run()
    assert rt.scheduler.total_vgpus == 4  # not doubled


def test_runtime_repr_smoke():
    env = Environment()
    rt = NodeRuntime(env, CudaDriver(env, [TESLA_C2050]), name="n0")
    assert "n0" in repr(rt)
    assert "devices=1" in repr(rt)


def test_vgpu_shutdown_releases_context():
    h = Harness()
    h.run(until=2.0)
    vgpu = h.scheduler.vgpus[0]
    device = h.driver.devices[0]
    used_before = device.allocator.used_bytes

    def stop():
        yield from vgpu.shutdown()

    p = h.spawn(stop())
    h.run(until=p)
    assert vgpu.retired
    assert device.allocator.used_bytes < used_before


def test_failed_device_excluded_from_idle_vgpus():
    h = Harness(specs=[TESLA_C2050, TESLA_C2050])
    h.run(until=2.0)
    assert len(h.scheduler.idle_vgpus()) == 8
    h.runtime.fail_device(h.driver.devices[0])
    assert len(h.scheduler.idle_vgpus()) == 4
    assert h.scheduler.total_vgpus == 4
