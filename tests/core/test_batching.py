"""Control-plane batching and graph replay: frontend journaling, batch
execution semantics (mid-batch failure, flush barriers, delay timers),
graph capture/auto-detection/replay and invalidation."""

import pytest

from repro.core import RuntimeConfig
from repro.core.errors import RuntimeApiError, RuntimeErrorCode
from repro.core.protocol import CallType
from repro.net.rpc import Request
from repro.simcuda import FatBinary, KernelDescriptor, TESLA_C2050, TESLA_C1060

from tests.core.conftest import Harness, MIB


def make_kernel(name="k", seconds=0.05):
    return KernelDescriptor(
        name=name, flops=seconds * TESLA_C2050.effective_gflops * 1e9
    )


def open_and_register(h, fe, kernel):
    yield from fe.open()
    handle = yield from fe.register_fat_binary(FatBinary())
    yield from fe.register_function(handle, kernel)


# ---------------------------------------------------------------------------
# frontend journaling + batch execution
# ---------------------------------------------------------------------------
def test_batched_app_completes_in_fewer_round_trips():
    h = Harness()
    kernel = make_kernel()
    done = {}

    def app():
        fe = h.frontend("batched", batch_max_calls=8)
        yield from open_and_register(h, fe, kernel)
        ptr = yield from fe.cuda_malloc(64 * MIB)
        yield from fe.cuda_memcpy_h2d(ptr, 64 * MIB)
        for _ in range(12):
            yield from fe.launch_kernel(kernel, [ptr])
        yield from fe.cuda_memcpy_d2h(ptr, 64 * MIB)
        yield from fe.cuda_free(ptr)
        yield from fe.cuda_thread_exit()
        done["at"] = h.env.now

    h.spawn(app())
    h.run()
    assert "at" in done
    stats = h.stats
    assert stats.kernels_launched == 12
    assert stats.batches_submitted >= 2
    # h2d + 24 cfg/launch + the barrier tails all went through batches.
    assert stats.batched_calls > stats.batches_submitted
    # average achieved batch size is meaningfully > 1
    assert stats.batched_calls / stats.batches_submitted >= 3


def test_flush_barrier_ships_pending_batch_with_itself_as_tail():
    h = Harness()
    kernel = make_kernel()

    def app():
        fe = h.frontend("tail", batch_max_calls=64)
        yield from open_and_register(h, fe, kernel)
        ptr = yield from fe.cuda_malloc(8 * MIB)
        yield from fe.cuda_memcpy_h2d(ptr, 8 * MIB)
        yield from fe.launch_kernel(kernel, [ptr])  # 2 journaled calls
        assert len(fe._batch) == 3  # h2d + cfg + launch, none shipped yet
        yield from fe.cuda_memcpy_d2h(ptr, 8 * MIB)  # barrier
        assert fe._batch == []
        yield from fe.cuda_thread_exit()

    h.spawn(app())
    h.run()
    # one batch: h2d + cfg + launch + d2h tail; exit found an empty
    # journal and went out as a plain single-call RPC
    assert h.stats.batches_submitted == 1
    assert h.stats.kernels_launched == 1


def test_batch_of_one_or_disabled_batching_uses_plain_path():
    h = Harness()
    kernel = make_kernel()

    def app():
        fe = h.frontend("plain", batch_max_calls=1)
        assert not fe._batching
        yield from open_and_register(h, fe, kernel)
        ptr = yield from fe.cuda_malloc(8 * MIB)
        yield from fe.launch_kernel(kernel, [ptr])
        yield from fe.cuda_thread_exit()

    h.spawn(app())
    h.run()
    assert h.stats.batches_submitted == 0
    assert h.stats.batched_calls == 0
    assert h.stats.kernels_launched == 1


def test_mid_batch_failure_aborts_tail_with_typed_errors():
    """Call k fails -> k+1..N carry BATCH_ABORTED, earlier results
    survive, and the dispatcher answers every call (no hang)."""
    h = Harness()
    kernel = make_kernel()
    seen = {}

    def app():
        fe = h.frontend("failer", batch_max_calls=64)
        yield from open_and_register(h, fe, kernel)
        ptr = yield from fe.cuda_malloc(8 * MIB)
        yield from fe.cuda_memcpy_h2d(ptr, 8 * MIB)
        yield from fe.flush()
        calls = [
            Request(method=CallType.CONFIGURE_CALL, args={}),
            Request(method=CallType.LAUNCH, args={"kernel": kernel, "args": (ptr,)}),
            Request(
                method=CallType.MEMCPY_H2D,
                args={"vptr": 0xDEAD, "nbytes": MIB},
                payload_bytes=MIB,
            ),
            Request(method=CallType.CONFIGURE_CALL, args={}),
            Request(method=CallType.LAUNCH, args={"kernel": kernel, "args": (ptr,)}),
        ]
        responses = yield from fe._rpc.call_batch(calls)
        seen["responses"] = responses
        yield from fe.cuda_thread_exit()

    h.spawn(app())
    h.run()
    responses = seen["responses"]
    assert [r.error is None for r in responses] == [True, True, False, False, False]
    failing = responses[2].error
    assert isinstance(failing, RuntimeApiError)
    assert failing.code is RuntimeErrorCode.NO_VALID_PTE
    for aborted in responses[3:]:
        assert isinstance(aborted.error, RuntimeApiError)
        assert aborted.error.code is RuntimeErrorCode.BATCH_ABORTED
    # the launch before the failure executed; the one after did not
    assert h.stats.kernels_launched == 1


def test_flush_raises_root_cause_not_batch_aborted():
    h = Harness()
    kernel = make_kernel()
    caught = {}

    def app():
        fe = h.frontend("raiser", batch_max_calls=64)
        yield from open_and_register(h, fe, kernel)
        ptr = yield from fe.cuda_malloc(8 * MIB)
        yield from fe.cuda_memcpy_h2d(ptr, 8 * MIB)
        yield from fe.cuda_memcpy_h2d(0xBAD, MIB)  # journaled, will fail
        yield from fe.launch_kernel(kernel, [ptr])  # journaled, aborted
        try:
            yield from fe.cuda_memcpy_d2h(ptr, 8 * MIB)  # barrier flushes
        except RuntimeApiError as exc:
            caught["code"] = exc.code
        yield from fe.cuda_thread_exit()

    h.spawn(app())
    h.run()
    assert caught["code"] is RuntimeErrorCode.NO_VALID_PTE
    assert h.stats.kernels_launched == 0


def test_delay_timer_flushes_stale_batch():
    h = Harness()
    kernel = make_kernel()

    def app():
        fe = h.frontend("timed", batch_max_calls=64, batch_max_delay_s=0.05)
        yield from open_and_register(h, fe, kernel)
        ptr = yield from fe.cuda_malloc(8 * MIB)
        yield from fe.cuda_memcpy_h2d(ptr, 8 * MIB)
        yield from fe.launch_kernel(kernel, [ptr])
        # no barrier: only the delay timer can ship these 3 calls
        yield h.env.timeout(1.0)
        assert fe._batch == []
        assert h.stats.kernels_launched == 1
        yield from fe.cuda_thread_exit()

    h.spawn(app())
    h.run()
    assert h.stats.batches_submitted >= 1


def test_timer_flush_error_is_deferred_to_next_call():
    h = Harness()
    kernel = make_kernel()
    caught = {}

    def app():
        fe = h.frontend("deferred", batch_max_calls=64, batch_max_delay_s=0.05)
        yield from open_and_register(h, fe, kernel)
        yield from fe.cuda_memcpy_h2d(0xBAD, MIB)  # journaled
        yield h.env.timeout(1.0)  # timer flush fails in the background
        try:
            yield from fe.cuda_thread_synchronize()
        except RuntimeApiError as exc:
            caught["code"] = exc.code
        yield from fe.cuda_thread_exit()

    h.spawn(app())
    h.run()
    assert caught["code"] is RuntimeErrorCode.NO_VALID_PTE


def test_batched_app_survives_device_failure():
    """Mid-batch device retirement: the recovery/rebind loop runs inside
    batch execution, the journal replays, and the app completes."""
    h = Harness(specs=[TESLA_C2050, TESLA_C1060])
    kernel = make_kernel(seconds=0.3)
    done = {}

    def app():
        fe = h.frontend("survivor", batch_max_calls=4)
        yield from open_and_register(h, fe, kernel)
        ptr = yield from fe.cuda_malloc(32 * MIB)
        yield from fe.cuda_memcpy_h2d(ptr, 32 * MIB)
        for _ in range(10):
            yield from fe.launch_kernel(kernel, [ptr])
        yield from fe.cuda_memcpy_d2h(ptr, 32 * MIB)
        yield from fe.cuda_thread_exit()
        done["at"] = h.env.now

    def killer():
        yield h.env.timeout(1.5)
        h.runtime.fail_device(h.driver.devices[0])

    h.spawn(app())
    h.spawn(killer())
    h.run()
    assert "at" in done
    assert h.stats.kernels_launched >= 10


# ---------------------------------------------------------------------------
# graph capture / replay
# ---------------------------------------------------------------------------
def graph_config(**kw):
    return RuntimeConfig(
        graph_replay_enabled=True, launch_control_plane_s=40e-6, **kw
    )


def test_explicit_capture_records_without_executing():
    h = Harness(config=graph_config())
    kernel = make_kernel()
    seen = {}

    def app():
        fe = h.frontend("capturer")
        yield from open_and_register(h, fe, kernel)
        ptr = yield from fe.cuda_malloc(8 * MIB)
        yield from fe.cuda_memcpy_h2d(ptr, 8 * MIB)
        yield from fe.graph_begin_capture()
        for _ in range(5):
            yield from fe.launch_kernel(kernel, [ptr])
        assert h.stats.kernels_launched == 0  # recorded, not executed
        graph = yield from fe.graph_end_capture()
        seen["graph"] = graph
        yield from fe.graph_launch(graph)
        yield from fe.graph_launch(graph)
        yield from fe.cuda_thread_exit()

    h.spawn(app())
    h.run()
    assert seen["graph"] is not None
    assert h.stats.graphs_instantiated == 1
    assert h.stats.graph_replays == 2
    assert h.stats.graph_replayed_kernels == 10
    assert h.stats.kernels_launched == 10


def test_graph_launch_unknown_handle_is_typed_error():
    h = Harness(config=graph_config())
    caught = {}

    def app():
        fe = h.frontend("bad-graph")
        yield from fe.open()
        try:
            yield from fe.graph_launch(999)
        except RuntimeApiError as exc:
            caught["code"] = exc.code
        yield from fe.cuda_thread_exit()

    h.spawn(app())
    h.run()
    assert caught["code"] is RuntimeErrorCode.GRAPH_INVALID


def test_repeated_batches_auto_instantiate_and_replay():
    """Journal-based detection: identical launch-only batch frames are
    instantiated after graph_min_repeats and replayed thereafter."""
    h = Harness(config=graph_config(batch_max_calls=8, graph_min_repeats=2))
    kernel = make_kernel()

    def app():
        fe = h.frontend("looper", batch_max_calls=8)
        yield from open_and_register(h, fe, kernel)
        ptr = yield from fe.cuda_malloc(8 * MIB)
        yield from fe.cuda_memcpy_h2d(ptr, 8 * MIB)
        yield from fe.flush()
        for _ in range(6 * 4):  # 6 identical frames of 4 cfg/launch pairs
            yield from fe.launch_kernel(kernel, [ptr])
        yield from fe.cuda_memcpy_d2h(ptr, 8 * MIB)
        yield from fe.cuda_thread_exit()

    h.spawn(app())
    h.run()
    stats = h.stats
    assert stats.graphs_instantiated == 1
    # frames 1-2 count as repeats, 3 instantiates... no: 1-2 reach the
    # min_repeats threshold (instantiating on the 2nd), 3-6 replay.
    assert stats.graph_replays == 4
    assert stats.graph_replayed_kernels == 16
    assert stats.kernels_launched == 24


def test_graph_invalidated_when_working_set_evicted_between_replays():
    h = Harness(config=graph_config())
    kernel = make_kernel()

    def app():
        fe = h.frontend("evictee")
        yield from open_and_register(h, fe, kernel)
        ptr = yield from fe.cuda_malloc(8 * MIB)
        yield from fe.cuda_memcpy_h2d(ptr, 8 * MIB)
        yield from fe.graph_begin_capture()
        yield from fe.launch_kernel(kernel, [ptr])
        graph = yield from fe.graph_end_capture()
        yield from fe.graph_launch(graph)  # cold execution
        yield from fe.graph_launch(graph)  # hot: epoch unchanged
        assert h.stats.graphs_invalidated == 0
        # Evict the journaled working set between replays (the context is
        # in a CPU phase here, so swap-out is legal).
        ctx = h.runtime.dispatcher.contexts[0]
        yield from h.memory.swap_out_context(ctx, notify=False)
        yield from fe.graph_launch(graph)  # stale translations
        yield from fe.cuda_thread_exit()

    h.spawn(app())
    h.run()
    assert h.stats.graphs_invalidated == 1
    assert h.stats.graph_replays == 3
    # the invalidated replay still executed correctly (re-faulted)
    assert h.stats.kernels_launched == 3


def test_quantum_preemption_fires_between_batches():
    """Time-slicing still works under batching: preemption is deferred to
    batch boundaries but does fire there."""
    h = Harness(
        config=RuntimeConfig(
            vgpus_per_device=1, qos_enabled=True, vgpu_quantum_s=0.2,
            batch_max_calls=4,
        )
    )
    kernel = make_kernel(seconds=0.15)

    def app(name):
        def body():
            fe = h.frontend(name, batch_max_calls=4)
            yield from open_and_register(h, fe, kernel)
            ptr = yield from fe.cuda_malloc(16 * MIB)
            yield from fe.cuda_memcpy_h2d(ptr, 16 * MIB)
            for _ in range(8):
                yield from fe.launch_kernel(kernel, [ptr])
            yield from fe.cuda_memcpy_d2h(ptr, 16 * MIB)
            yield from fe.cuda_thread_exit()

        return body()

    h.spawn(app("a"))
    h.spawn(app("b"))
    h.run()
    assert h.stats.preemptions > 0
    assert h.stats.batches_submitted > 0
    assert h.stats.kernels_launched == 16


def test_journal_replay_after_failure_preserves_graphs():
    """Device failure between graph replays: recovery replays the
    journal, and the instantiated graph remains usable (revalidating on
    the new device)."""
    h = Harness(specs=[TESLA_C2050, TESLA_C1060], config=graph_config())
    kernel = make_kernel(seconds=0.2)
    done = {}

    def app():
        fe = h.frontend("phoenix")
        yield from open_and_register(h, fe, kernel)
        ptr = yield from fe.cuda_malloc(16 * MIB)
        yield from fe.cuda_memcpy_h2d(ptr, 16 * MIB)
        yield from fe.graph_begin_capture()
        for _ in range(3):
            yield from fe.launch_kernel(kernel, [ptr])
        graph = yield from fe.graph_end_capture()
        yield from fe.graph_launch(graph)
        yield h.env.timeout(1.0)  # device dies in this window
        yield from fe.graph_launch(graph)
        yield from fe.cuda_thread_exit()
        done["at"] = h.env.now

    def killer():
        yield h.env.timeout(2.0)
        h.runtime.fail_device(h.driver.devices[0])

    h.spawn(app())
    h.spawn(killer())
    h.run()
    assert "at" in done
    assert h.stats.graph_replays == 2
    # both replays' kernels ran (some possibly twice via journal replay)
    assert h.stats.kernels_launched >= 6


def test_batch_config_validation():
    with pytest.raises(ValueError):
        RuntimeConfig(batch_max_calls=0)
    with pytest.raises(ValueError):
        RuntimeConfig(batch_max_delay_s=0.0)
    with pytest.raises(ValueError):
        RuntimeConfig(launch_control_plane_s=-1e-6)
    with pytest.raises(ValueError):
        RuntimeConfig(graph_min_repeats=0)
