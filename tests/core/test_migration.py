"""Dynamic binding / job migration between GPUs (paper §5.3.4)."""

from repro.core import RuntimeConfig
from repro.simcuda import KernelDescriptor, QUADRO_2000, TESLA_C2050

from tests.core.conftest import Harness, MIB


def kernel(seconds, name="k", spec=TESLA_C2050):
    return KernelDescriptor(name=name, flops=seconds * spec.effective_gflops * 1e9)


def phased_job(h, name, results, kernels=6, kernel_s=0.5, cpu_s=0.5):
    def app():
        fe = h.frontend(name)
        yield from fe.open()
        k = kernel(kernel_s, f"{name}-k")
        a = yield from fe.cuda_malloc(32 * MIB)
        yield from fe.cuda_memcpy_h2d(a, 32 * MIB)
        for _ in range(kernels):
            yield from fe.launch_kernel(k, [a])
            yield h.env.timeout(cpu_s)
        yield from fe.cuda_thread_exit()
        results[name] = h.env.now

    return app()


def unbalanced_harness(migration=True, vgpus=1):
    return Harness(
        specs=[TESLA_C2050, QUADRO_2000],
        config=RuntimeConfig(
            vgpus_per_device=vgpus,
            migration_enabled=migration,
            migration_min_speedup=1.2,
        ),
    )


def test_job_migrates_from_slow_to_fast_gpu():
    """Two jobs on {fast, slow}; when the fast GPU frees, the slow job's
    remainder migrates there."""
    h = unbalanced_harness()
    results = {}
    # Job A is short: frees the fast GPU early.  Job B is long and starts
    # on the slow Quadro.
    h.spawn(phased_job(h, "short", results, kernels=2, kernel_s=0.3, cpu_s=0.1))
    h.spawn(phased_job(h, "long", results, kernels=8, kernel_s=0.5, cpu_s=0.5))
    h.run()
    assert set(results) == {"short", "long"}
    assert h.stats.migrations >= 1
    long_ctx = next(c for c in h.runtime.dispatcher.contexts if c.owner == "long")
    assert long_ctx.migrations >= 1
    # The fast device executed kernels for both jobs.
    fast = h.driver.devices[0]
    assert fast.kernels_executed > 2


def test_migration_disabled_keeps_job_on_slow_gpu():
    h = unbalanced_harness(migration=False)
    results = {}
    h.spawn(phased_job(h, "short", results, kernels=2, kernel_s=0.3, cpu_s=0.1))
    h.spawn(phased_job(h, "long", results, kernels=8, kernel_s=0.5, cpu_s=0.5))
    h.run()
    assert h.stats.migrations == 0
    slow = h.driver.devices[1]
    assert slow.kernels_executed == 8  # the long job never left


def test_migration_speeds_up_unbalanced_node():
    def total_time(migration):
        h = unbalanced_harness(migration=migration)
        results = {}
        h.spawn(phased_job(h, "short", results, kernels=2, kernel_s=0.3, cpu_s=0.1))
        h.spawn(phased_job(h, "long", results, kernels=8, kernel_s=0.5, cpu_s=0.5))
        h.run()
        return max(results.values())

    assert total_time(migration=True) < total_time(migration=False)


def test_no_migration_when_jobs_are_waiting():
    """With pending jobs, idle fast vGPUs serve the queue instead of
    pulling jobs off the slow GPU (the paper's large-batch observation)."""
    h = unbalanced_harness(vgpus=1)
    results = {}
    for i in range(6):  # 6 jobs on 2 vGPUs: queue always populated
        h.spawn(phased_job(h, f"j{i}", results, kernels=3, kernel_s=0.4, cpu_s=0.05))
    h.run()
    assert len(results) == 6
    # Migrations may be zero or few; they must never exceed batches where
    # the queue ran dry near the end.
    assert h.stats.migrations <= 2


def test_migration_preserves_data():
    """A migrated job's data follows it: write-backs happen on the source
    device and the data faults back in on the destination."""
    h = unbalanced_harness()
    results = {}
    h.spawn(phased_job(h, "short", results, kernels=2, kernel_s=0.3, cpu_s=0.1))
    h.spawn(phased_job(h, "long", results, kernels=8, kernel_s=0.5, cpu_s=0.5))
    h.run()
    if h.stats.migrations:
        assert h.stats.swap_bytes_out >= 32 * MIB  # write-back on source
        assert h.stats.swap_bytes_in >= 2 * 32 * MIB  # initial + re-fault


def test_excluded_context_never_migrates():
    """Applications with device-side dynamic allocation are excluded from
    dynamic scheduling (§1)."""
    from repro.simcuda import FatBinary

    h = unbalanced_harness()
    results = {}

    def dynamic_app():
        fe = h.frontend("dynamic")
        yield from fe.open()
        fb = FatBinary()
        k = KernelDescriptor(
            name="dyn-k",
            flops=0.5 * TESLA_C2050.effective_gflops * 1e9,
            uses_dynamic_alloc=True,
        )
        fb.register_function(k)
        yield from fe.register_fat_binary(fb)
        a = yield from fe.cuda_malloc(16 * MIB)
        for _ in range(6):
            yield from fe.launch_kernel(k, [a])
            yield h.env.timeout(0.5)
        yield from fe.cuda_thread_exit()
        results["dynamic"] = h.env.now

    # Short job occupies the fast GPU briefly; dynamic job lands on the
    # slow GPU and must stay there.
    h.spawn(phased_job(h, "short", results, kernels=1, kernel_s=0.2, cpu_s=0.0))
    h.spawn(dynamic_app())
    h.run()
    ctx = next(c for c in h.runtime.dispatcher.contexts if c.owner == "dynamic")
    assert ctx.excluded_from_sharing
    assert ctx.migrations == 0
