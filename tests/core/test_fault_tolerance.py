"""Fault tolerance, checkpoint-restart, and GPU hotplug (paper §4.6)."""

import pytest

from repro.core import RuntimeConfig
from repro.core.checkpoint import restore_context, snapshot_context
from repro.core.context import Context
from repro.core.fault import FailureInjector, HotplugEvent
from repro.simcuda import KernelDescriptor, TESLA_C1060, TESLA_C2050

from tests.core.conftest import Harness, MIB


def kernel(seconds=0.5, name="k"):
    return KernelDescriptor(
        name=name, flops=seconds * TESLA_C2050.effective_gflops * 1e9
    )


def open_app(h, name="app"):
    fe = h.frontend(name)
    yield from fe.open()
    return fe


def iterative_app(h, name, results, kernels=6, kernel_s=0.5, cpu_s=0.3, alloc_mib=64):
    """A multi-phase application that records completion."""

    def app():
        fe = yield from open_app(h, name)
        k = kernel(kernel_s, f"{name}-k")
        a = yield from fe.cuda_malloc(alloc_mib * MIB)
        yield from fe.cuda_memcpy_h2d(a, alloc_mib * MIB)
        for _ in range(kernels):
            yield from fe.launch_kernel(k, [a])
            yield h.env.timeout(cpu_s)
        yield from fe.cuda_memcpy_d2h(a, alloc_mib * MIB)
        yield from fe.cuda_thread_exit()
        results[name] = h.env.now

    return app()


# ---------------------------------------------------------------------------
# failure recovery
# ---------------------------------------------------------------------------

def test_app_survives_device_failure_with_second_gpu():
    """GPU 0 dies mid-run; the context is rebound to GPU 1 and replayed —
    no application restart (the headline §4.6 property)."""
    h = Harness(specs=[TESLA_C2050, TESLA_C1060])
    results = {}
    h.spawn(iterative_app(h, "survivor", results))
    FailureInjector(h.runtime, [HotplugEvent(at_seconds=1.2, action="fail",
                                             device_index=0)]).start()
    h.run()
    assert "survivor" in results
    assert h.stats.failures_recovered >= 1
    # The survivor ended up on the surviving device.
    ctx = h.runtime.dispatcher.contexts[0]
    assert ctx.kernels_launched >= 6


def test_replay_reexecutes_unjournaled_kernels():
    """Kernels whose effects were only on the failed device are replayed
    from the journal."""
    h = Harness(specs=[TESLA_C2050, TESLA_C1060])
    results = {}
    h.spawn(iterative_app(h, "a", results, kernels=4, kernel_s=0.5, cpu_s=0.1))
    # vGPU startup takes ~0.64 s (8 CUDA contexts); kernels complete from
    # ~1.2 s onwards.  Failing at 2.5 s guarantees a non-empty journal.
    FailureInjector(h.runtime, [HotplugEvent(at_seconds=2.5, action="fail",
                                             device_index=0)]).start()
    h.run()
    assert results
    assert h.stats.replayed_kernels >= 1


def test_failure_without_spare_device_errors_out():
    """With no healthy device to rebind to, the application eventually
    receives the error instead of hanging forever."""
    h = Harness(
        specs=[TESLA_C2050],
        config=RuntimeConfig(max_failed_rebind_attempts=0),
    )
    from repro.simcuda import CudaRuntimeError

    failed = {}

    def app():
        fe = yield from open_app(h, "doomed")
        k = kernel(1.0)
        a = yield from fe.cuda_malloc(MIB)
        try:
            yield from fe.launch_kernel(k, [a])
            yield h.env.timeout(1.0)
            yield from fe.launch_kernel(k, [a])
        except CudaRuntimeError as exc:
            failed["error"] = exc

    h.spawn(app())
    FailureInjector(h.runtime, [HotplugEvent(at_seconds=0.5, action="fail",
                                             device_index=0)]).start()
    h.run()
    assert "error" in failed


def test_checkpoint_bounds_replay():
    """With automatic checkpoints after every kernel, the journal stays
    empty, so recovery replays nothing."""
    h = Harness(
        specs=[TESLA_C2050, TESLA_C1060],
        config=RuntimeConfig(checkpoint_kernel_seconds=0.0),
    )
    results = {}
    h.spawn(iterative_app(h, "ckpt", results, kernels=5, kernel_s=0.4, cpu_s=0.2))
    FailureInjector(h.runtime, [HotplugEvent(at_seconds=1.5, action="fail",
                                             device_index=0)]).start()
    h.run()
    assert results
    assert h.stats.checkpoints >= 4
    assert h.stats.replayed_kernels == 0


def test_explicit_checkpoint_call():
    h = Harness()

    def app():
        fe = yield from open_app(h, "explicit")
        k = kernel(0.2)
        a = yield from fe.cuda_malloc(32 * MIB)
        yield from fe.launch_kernel(k, [a])
        yield from fe.checkpoint()
        ctx = h.runtime.dispatcher.contexts[0]
        assert ctx.replay_journal == []
        yield from fe.cuda_thread_exit()

    p = h.spawn(app())
    h.run(until=p)
    assert h.stats.checkpoints == 1


# ---------------------------------------------------------------------------
# dynamic upgrade / downgrade
# ---------------------------------------------------------------------------

def test_added_gpu_serves_waiting_contexts():
    """Dynamic upgrade: contexts waiting for a vGPU get served when a GPU
    is added."""
    h = Harness(specs=[TESLA_C2050], config=RuntimeConfig(vgpus_per_device=1))
    results = {}
    for i in range(3):
        h.spawn(iterative_app(h, f"j{i}", results, kernels=3, kernel_s=1.0, cpu_s=0))
    FailureInjector(
        h.runtime, [HotplugEvent(at_seconds=0.5, action="add", spec=TESLA_C1060)]
    ).start()
    h.run()
    assert len(results) == 3
    assert h.driver.device_count() == 2
    # Something actually ran on the added device.
    added = h.driver.devices[1]
    assert added.kernels_executed >= 1


def test_graceful_downgrade_migrates_contexts():
    """Removing a GPU drains its contexts; they finish elsewhere."""
    h = Harness(specs=[TESLA_C2050, TESLA_C1060], config=RuntimeConfig(vgpus_per_device=1))
    results = {}
    h.spawn(iterative_app(h, "a", results, kernels=8, kernel_s=0.3, cpu_s=0.3))
    h.spawn(iterative_app(h, "b", results, kernels=8, kernel_s=0.3, cpu_s=0.3))

    def downgrade():
        yield h.env.timeout(1.5)
        # Remove whichever device currently hosts a context.
        target = h.driver.devices[1]
        yield from h.runtime.remove_device_gracefully(target)

    h.spawn(downgrade())
    h.run()
    assert len(results) == 2
    assert h.driver.device_count() == 1


# ---------------------------------------------------------------------------
# snapshot / restore (BLCR integration point)
# ---------------------------------------------------------------------------

def test_snapshot_restore_roundtrip():
    h = Harness()
    snap_box = {}

    def app():
        fe = yield from open_app(h, "snap")
        k = kernel(0.2)
        a = yield from fe.cuda_malloc(16 * MIB)
        yield from fe.cuda_memcpy_h2d(a, 16 * MIB)
        yield from fe.launch_kernel(k, [a])
        ctx = h.runtime.dispatcher.contexts[0]
        snap_box["snap"] = snapshot_context(h.memory, ctx)
        yield from fe.cuda_thread_exit()

    p = h.spawn(app())
    h.run(until=p)

    snap = snap_box["snap"]
    assert snap.total_bytes == 16 * MIB
    assert len(snap.journal) == 1  # the un-checkpointed kernel

    # Restore into a fresh context on a fresh "restarted" node.
    h2 = Harness()
    ctx2 = Context(h2.env, owner="restored")
    translation = restore_context(h2.memory, ctx2, snap)
    assert len(translation) == 1
    assert h2.memory.swap.used_bytes == 16 * MIB
    assert len(ctx2.replay_journal) == 1
    new_vptr = list(translation.values())[0]
    pte = h2.memory.page_table.lookup(ctx2, new_vptr)
    assert pte.to_copy_2dev  # restored bytes flow to the device on first use
