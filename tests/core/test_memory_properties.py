"""Property-based tests of the memory manager through the full stack.

Random application call sequences (malloc / copy / launch / free) on a
memory-constrained GPU must always leave the system in a consistent
state: legal PTE flags, conserved device memory, balanced swap
accounting and no leaks after exit — regardless of how much swapping the
sequence provokes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RuntimeConfig
from repro.simcuda import GPUSpec, KernelDescriptor

from tests.core.conftest import Harness

MIB = 1024**2

SMALL_GPU = GPUSpec(
    name="prop-gpu", sm_count=14, cores_per_sm=32, clock_ghz=1.15,
    memory_bytes=512 * MIB,
)


def op_strategy():
    return st.lists(
        st.one_of(
            st.tuples(st.just("malloc"), st.integers(1, 120)),   # MiB
            st.tuples(st.just("h2d"), st.integers(0, 5)),        # buffer idx
            st.tuples(st.just("d2h"), st.integers(0, 5)),
            st.tuples(st.just("launch"), st.integers(0, 5)),
            st.tuples(st.just("free"), st.integers(0, 5)),
        ),
        min_size=1,
        max_size=20,
    )


def run_sequence(ops):
    h = Harness(specs=[SMALL_GPU], config=RuntimeConfig(vgpus_per_device=1))
    kernel = KernelDescriptor(
        name="prop-k", flops=0.01 * SMALL_GPU.effective_gflops * 1e9
    )
    observations = {}

    def app():
        fe = h.frontend("prop")
        yield from fe.open()
        buffers = []
        sizes = {}
        for kind, arg in ops:
            if kind == "malloc":
                size = arg * MIB
                vptr = yield from fe.cuda_malloc(size)
                buffers.append(vptr)
                sizes[vptr] = size
            elif not buffers:
                continue
            else:
                vptr = buffers[arg % len(buffers)]
                if kind == "h2d":
                    yield from fe.cuda_memcpy_h2d(vptr, sizes[vptr])
                elif kind == "d2h":
                    yield from fe.cuda_memcpy_d2h(vptr, sizes[vptr])
                elif kind == "launch":
                    yield from fe.launch_kernel(kernel, [vptr])
                elif kind == "free":
                    yield from fe.cuda_free(vptr)
                    buffers.remove(vptr)
                    del sizes[vptr]

            # Mid-run invariants after every call.
            ctx = h.runtime.dispatcher.contexts[0]
            for pte in h.memory.page_table.entries_for(ctx):
                pte.check_invariants()
            device = h.driver.devices[0]
            alloc = device.allocator
            assert alloc.used_bytes + alloc.free_bytes == alloc.capacity

        yield from fe.cuda_thread_exit()
        observations["done"] = True

    p = h.spawn(app())
    h.run(until=p)
    h.run()
    return h, observations


@settings(max_examples=30, deadline=None)
@given(ops=op_strategy())
def test_random_call_sequences_keep_invariants(ops):
    h, observations = run_sequence(ops)
    assert observations.get("done")

    device = h.driver.devices[0]
    # After exit: no application allocations remain (only the vGPU
    # context reservation).
    reservation = SMALL_GPU.context_reservation_bytes
    assert device.allocator.used_bytes == reservation
    # Swap fully released.
    assert h.memory.swap.used_bytes == 0
    # Page table empty.
    ctx = h.runtime.dispatcher.contexts[0]
    assert h.memory.page_table.entries_for(ctx) == []
    # Every vGPU idle.
    assert all(v.idle for v in h.scheduler.vgpus)


@settings(max_examples=15, deadline=None)
@given(
    sizes=st.lists(st.integers(30, 160), min_size=2, max_size=6),
    launch_order=st.lists(st.integers(0, 5), min_size=2, max_size=10),
)
def test_launch_storms_never_corrupt_state(sizes, launch_order):
    """Interleaved launches over many buffers (forcing intra-application
    swapping on the small device) always complete or fail cleanly."""
    ops = [("malloc", s) for s in sizes]
    ops += [("launch", i) for i in launch_order]
    run_sequence(ops)


@settings(max_examples=15, deadline=None)
@given(ops=op_strategy())
def test_two_tenants_random_sequences_isolate(ops):
    """Two tenants running the same random sequence never see each
    other's errors; aggregate accounting stays balanced."""
    h = Harness(specs=[SMALL_GPU], config=RuntimeConfig(vgpus_per_device=2))
    kernel = KernelDescriptor(
        name="k", flops=0.01 * SMALL_GPU.effective_gflops * 1e9
    )
    done = []

    def app(name):
        fe = h.frontend(name)
        yield from fe.open()
        buffers, sizes = [], {}
        for kind, arg in ops:
            if kind == "malloc":
                size = min(arg, 100) * MIB
                vptr = yield from fe.cuda_malloc(size)
                buffers.append(vptr)
                sizes[vptr] = size
            elif not buffers:
                continue
            else:
                vptr = buffers[arg % len(buffers)]
                if kind == "h2d":
                    yield from fe.cuda_memcpy_h2d(vptr, sizes[vptr])
                elif kind == "d2h":
                    yield from fe.cuda_memcpy_d2h(vptr, sizes[vptr])
                elif kind == "launch":
                    yield from fe.launch_kernel(kernel, [vptr])
                elif kind == "free":
                    yield from fe.cuda_free(vptr)
                    buffers.remove(vptr)
                    del sizes[vptr]
        yield from fe.cuda_thread_exit()
        done.append(name)

    h.spawn(app("t1"))
    h.spawn(app("t2"))
    h.run()
    assert sorted(done) == ["t1", "t2"]
    assert h.memory.swap.used_bytes == 0
    device = h.driver.devices[0]
    assert device.allocator.used_bytes == 2 * SMALL_GPU.context_reservation_bytes
