"""Overlap engine + swap-accounting/recovery bugfix cluster.

Covers the stream-pipelined transfer paths (async bulk H2D, asynchronous
checkpoint write-backs, CPU-phase prefetch), the unified swap accounting
(stats counter == histogram == trace events, clean entries observe
nothing), the single replay implementation, and scheduler behavior when
devices retire under waiting contexts.
"""

import pytest

from repro.core import RuntimeConfig
from repro.obs import SwapOut
from repro.simcuda import FatBinary, KernelDescriptor, TESLA_C2050
from repro.simcuda.errors import CudaError, CudaRuntimeError

from tests.core.conftest import Harness, MIB


def assert_swap_accounting_consistent(h):
    """The acceptance invariant: histogram totals equal the counters."""
    assert h.memory._swap_out_bytes.sum == h.stats.swap_bytes_out
    assert h.memory._swap_in_bytes.sum == h.stats.swap_bytes_in


def update_heavy_app(h, name, rounds=4, alloc_mib=512, kernel_seconds=0.3,
                     cpu_phase_s=0.4, results=None):
    """h2d → CPU gap → kernel → CPU gap, each round: the overlap-friendly
    pattern where transfers can hide under the application's CPU phases."""

    def _app():
        fe = h.frontend(name)
        yield from fe.open()
        fatbin = FatBinary()
        k = KernelDescriptor(
            name=f"{name}-k",
            flops=kernel_seconds * TESLA_C2050.effective_gflops * 1e9,
        )
        handle = yield from fe.register_fat_binary(fatbin)
        yield from fe.register_function(handle, k)
        size = alloc_mib * MIB
        ptr = yield from fe.cuda_malloc(size)
        start = h.env.now
        for _ in range(rounds):
            yield from fe.cuda_memcpy_h2d(ptr, size)
            yield h.env.timeout(cpu_phase_s)
            yield from fe.launch_kernel(k, [ptr])
            yield h.env.timeout(cpu_phase_s)
        yield from fe.cuda_memcpy_d2h(ptr, size)
        yield from fe.cuda_free(ptr)
        yield from fe.cuda_thread_exit()
        if results is not None:
            results.append(h.env.now - start)

    return _app()


# ----------------------------------------------------------------------
# copy_h2d eager branch (defer_transfers=False)
# ----------------------------------------------------------------------
def test_eager_copy_h2d_transfers_immediately_when_bound():
    """With deferral off, a host write to a resident entry pushes the
    data right away — and only the launch-time bulk path counts swap-in
    bytes, so the byte counters tell eager and deferred apart."""
    size = 64 * MIB

    def run(defer):
        h = Harness(config=RuntimeConfig(defer_transfers=defer))

        def app():
            fe = h.frontend("eager")
            yield from fe.open()
            fatbin = FatBinary()
            k = KernelDescriptor(name="k", flops=1e9)
            handle = yield from fe.register_fat_binary(fatbin)
            yield from fe.register_function(handle, k)
            ptr = yield from fe.cuda_malloc(size)
            yield from fe.cuda_memcpy_h2d(ptr, size)   # unbound: deferred
            yield from fe.launch_kernel(k, [ptr])       # binds + bulk H2D
            yield from fe.cuda_memcpy_h2d(ptr, size)   # bound + resident
            yield from fe.launch_kernel(k, [ptr])
            yield from fe.cuda_thread_exit()

        h.spawn(app())
        h.run()
        return h

    eager = run(defer=False)
    deferred = run(defer=True)
    # Two device transfers either way…
    assert eager.stats.h2d_device_transfers == 2
    assert deferred.stats.h2d_device_transfers == 2
    # …but the eager second copy bypasses the launch-time bulk path.
    assert eager.stats.swap_bytes_in == size
    assert deferred.stats.swap_bytes_in == 2 * size
    assert_swap_accounting_consistent(eager)
    assert_swap_accounting_consistent(deferred)


# ----------------------------------------------------------------------
# bugfix: clean-entry swap-out must observe nothing
# ----------------------------------------------------------------------
def test_clean_entry_swap_out_observes_no_bytes_and_no_event():
    """An inter-application swap of entries the victim's kernels only
    *read* moves no data device→host: the histogram, the counter and the
    trace must all agree on zero."""
    h = Harness(config=RuntimeConfig(vgpus_per_device=2, tracing=True))

    def tenant(name, read_only, cpu_tail_s):
        def _app():
            fe = h.frontend(name)
            yield from fe.open()
            fatbin = FatBinary()
            k = KernelDescriptor(name=f"{name}-k", flops=1e9)
            handle = yield from fe.register_fat_binary(fatbin)
            yield from fe.register_function(handle, k)
            size = 1800 * MIB
            ptr = yield from fe.cuda_malloc(size)
            yield from fe.cuda_memcpy_h2d(ptr, size)
            yield from fe.launch_kernel(
                k, [ptr], read_only=[ptr] if read_only else []
            )
            yield h.env.timeout(cpu_tail_s)
            yield from fe.cuda_thread_exit()

        return _app()

    # The victim launches first and then idles in a CPU phase with a
    # clean (read-only) working set; the second tenant's launch must
    # evict it to fit.
    h.spawn(tenant("victim", read_only=True, cpu_tail_s=30.0))

    def late_tenant():
        yield h.env.timeout(3.0)
        yield from tenant("intruder", read_only=False, cpu_tail_s=0.0)

    h.spawn(late_tenant())
    h.run()
    assert h.stats.swaps_inter >= 1
    assert h.stats.swap_bytes_out == 0
    assert h.memory._swap_out_bytes.count == 0
    assert h.runtime.obs.events_of(SwapOut) == []
    assert_swap_accounting_consistent(h)


# ----------------------------------------------------------------------
# bugfix: copy_d2h write-back is accounted like any other swap-out
# ----------------------------------------------------------------------
def test_copy_d2h_write_back_accounts_bytes_histogram_and_event():
    h = Harness(config=RuntimeConfig(tracing=True))
    size_mib = 96
    h.spawn(h.simple_app("writer", alloc_mib=size_mib))
    h.run()
    # The kernel dirtied the buffer; the final d2h wrote it back.
    assert h.stats.swap_bytes_out == size_mib * MIB
    assert h.memory._swap_out_bytes.count == 1
    assert h.memory._swap_out_bytes.sum == size_mib * MIB
    events = h.runtime.obs.events_of(SwapOut)
    assert len(events) == 1 and events[0].nbytes == size_mib * MIB
    assert_swap_accounting_consistent(h)


# ----------------------------------------------------------------------
# bugfix: one replay implementation
# ----------------------------------------------------------------------
def test_memory_replay_delegates_to_dispatcher_loop():
    h = Harness()
    assert h.memory.replay_fn == h.runtime.dispatcher.replay_journal


# ----------------------------------------------------------------------
# bugfix: device retirement must not strand waiting contexts
# ----------------------------------------------------------------------
def test_retiring_last_device_fails_waiters_instead_of_hanging():
    h = Harness(config=RuntimeConfig(vgpus_per_device=1))
    outcome = {}

    def holder():
        fe = h.frontend("holder")
        yield from fe.open()
        fatbin = FatBinary()
        k = KernelDescriptor(
            name="long-k", flops=20.0 * TESLA_C2050.effective_gflops * 1e9
        )
        handle = yield from fe.register_fat_binary(fatbin)
        yield from fe.register_function(handle, k)
        ptr = yield from fe.cuda_malloc(64 * MIB)
        try:
            yield from fe.launch_kernel(k, [ptr])
        except CudaRuntimeError:
            pass  # its device dies mid-kernel

    def waiter():
        fe = h.frontend("waiter")
        yield from fe.open()
        fatbin = FatBinary()
        k = KernelDescriptor(name="w-k", flops=1e9)
        handle = yield from fe.register_fat_binary(fatbin)
        yield from fe.register_function(handle, k)
        ptr = yield from fe.cuda_malloc(64 * MIB)
        yield h.env.timeout(8.0)  # the holder is mid-kernel: queue behind it
        try:
            yield from fe.launch_kernel(k, [ptr])
            outcome["result"] = "completed"
        except CudaRuntimeError as exc:
            outcome["result"] = exc.code

    def killer():
        yield h.env.timeout(12.0)
        h.runtime.fail_device(h.driver.devices[0])

    h.spawn(holder())
    h.spawn(waiter())
    h.spawn(killer())
    h.run()
    # Before the fix the waiter slept forever on its binding grant; now
    # it observes devices-unavailable once the rebind attempts run out.
    assert outcome["result"] == CudaError.cudaErrorDevicesUnavailable
    waiting_ctx = next(
        c for c in h.runtime.dispatcher.contexts if c.owner == "waiter"
    )
    assert h.scheduler.waiting_count == 0
    assert waiting_ctx not in h.scheduler._waiting_events


def test_request_binding_fails_fast_with_no_healthy_device():
    h = Harness(config=RuntimeConfig(vgpus_per_device=1))
    h.run(until=1.0)  # let the runtime boot
    h.runtime.fail_device(h.driver.devices[0])
    from repro.core.context import Context

    ctx = Context(h.env, owner="late")

    def try_bind():
        try:
            yield from h.scheduler.request_binding(ctx)
        except CudaRuntimeError as exc:
            return exc.code
        return None

    p = h.spawn(try_bind())
    h.run(until=2.0)
    assert p.value == CudaError.cudaErrorDevicesUnavailable


# ----------------------------------------------------------------------
# the tentpole: pipelined transfers beat the deferred baseline
# ----------------------------------------------------------------------
def test_overlap_mode_reduces_makespan_and_overlaps_engines():
    base = RuntimeConfig(vgpus_per_device=2, checkpoint_kernel_seconds=0.0)

    def run(config):
        h = Harness(config=config)
        times = []
        for i in range(2):
            h.spawn(update_heavy_app(h, f"tenant{i}", results=times))
        h.run()
        return h, max(times)

    h_def, makespan_def = run(base)
    h_ovl, makespan_ovl = run(base.overlapped())

    # Same work, strictly less wall-clock: write-backs and prefetched
    # bulk transfers hid under the CPU phases.
    assert makespan_ovl < makespan_def
    # The copy and exec engines genuinely ran concurrently.
    assert h_ovl.driver.devices[0].copy_exec_overlap_seconds > 0
    # The prefetch hook did real work and the launches consumed it.
    assert h_ovl.stats.prefetch_issued > 0
    assert h_ovl.stats.prefetch_hits > 0
    assert h_ovl.stats.prefetch_bytes > 0
    assert h_def.stats.prefetch_issued == 0
    # Checkpoints still happened (asynchronously) in overlap mode.
    assert h_ovl.stats.checkpoints > 0
    # Accounting stays consistent on both paths.
    assert_swap_accounting_consistent(h_def)
    assert_swap_accounting_consistent(h_ovl)
    assert h_ovl.stats.swap_bytes_out == h_def.stats.swap_bytes_out


def test_overlap_mode_preserves_kernel_and_transfer_counts():
    """Pipelining must not change *what* work happens — only when."""
    base = RuntimeConfig(vgpus_per_device=2, checkpoint_kernel_seconds=0.0)

    def run(config):
        h = Harness(config=config)
        for i in range(2):
            h.spawn(update_heavy_app(h, f"tenant{i}", rounds=3))
        h.run()
        return h

    h_def = run(base)
    h_ovl = run(base.overlapped())
    assert h_ovl.stats.kernels_launched == h_def.stats.kernels_launched
    assert h_ovl.stats.checkpoints == h_def.stats.checkpoints
    # Every entry each launch needed still got exactly one bulk transfer
    # (prefetched or launch-time), so total swap-in traffic is identical.
    assert h_ovl.stats.swap_bytes_in == h_def.stats.swap_bytes_in
