"""Small unit checks for surfaces not covered elsewhere."""

import pytest

from repro.cluster.jobs import JobOutcome
from repro.core.errors import RuntimeApiError, RuntimeErrorCode
from repro.core.protocol import (
    CallType,
    DEVICE_MANAGEMENT_CALLS,
    MEMORY_CALLS,
    REGISTRATION_CALLS,
)
from repro.core.stats import RuntimeStats
from repro.simcuda.errors import CudaError


def test_call_type_partitions():
    assert CallType.SET_DEVICE in DEVICE_MANAGEMENT_CALLS
    assert CallType.GET_DEVICE_COUNT in DEVICE_MANAGEMENT_CALLS
    assert CallType.REGISTER_FATBIN in REGISTRATION_CALLS
    assert CallType.MALLOC in MEMORY_CALLS
    assert CallType.LAUNCH not in MEMORY_CALLS
    # The sets are disjoint.
    assert not (DEVICE_MANAGEMENT_CALLS & REGISTRATION_CALLS)
    assert not (MEMORY_CALLS & REGISTRATION_CALLS)


def test_call_type_values_are_cuda_symbol_names():
    assert CallType.MALLOC.value == "cudaMalloc"
    assert CallType.REGISTER_FATBIN.value == "__cudaRegisterFatBinary"
    assert CallType.EXIT.value == "cudaThreadExit"


def test_cuda_error_is_success():
    assert CudaError.cudaSuccess.is_success()
    assert not CudaError.cudaErrorMemoryAllocation.is_success()


def test_runtime_api_error_message():
    err = RuntimeApiError(RuntimeErrorCode.NO_VALID_PTE, "0xdead")
    assert "NO_VALID_PTE" in str(err)
    bare = RuntimeApiError(RuntimeErrorCode.SWAP_SIZE_MISMATCH)
    assert "mismatch" in str(bare).lower()


def test_job_outcome_metrics():
    o = JobOutcome(name="j", submitted_at=10.0, started_at=12.0, finished_at=20.0)
    assert o.turnaround == 10.0
    assert o.execution_time == 8.0
    assert o.ok
    unfinished = JobOutcome(name="k", submitted_at=0.0)
    assert unfinished.turnaround is None
    assert unfinished.execution_time is None
    assert not unfinished.ok


def test_runtime_stats_as_dict_includes_total():
    stats = RuntimeStats()
    stats.swaps_intra = 2
    stats.swaps_inter = 3
    d = stats.as_dict()
    assert d["swaps_total"] == 5
    assert d["swaps_intra"] == 2


def test_stats_swaps_total_property():
    stats = RuntimeStats(swaps_intra=1, swaps_inter=4)
    assert stats.swaps_total == 5
