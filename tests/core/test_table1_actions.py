"""Table 1 semantics: actions the runtime performs per intercepted call.

These tests drive the full stack (frontend → dispatcher → memory manager
→ vGPU → simulated CUDA driver) and assert the paper's per-call
behaviour: deferral, coalescing, bad-call detection, write-back rules.
"""

import pytest

from repro.core.errors import RuntimeApiError, RuntimeErrorCode
from repro.simcuda import FatBinary, KernelDescriptor, TESLA_C2050

from tests.core.conftest import Harness, MIB


def make_kernel(name="k", seconds=0.1):
    return KernelDescriptor(
        name=name, flops=seconds * TESLA_C2050.effective_gflops * 1e9
    )


def open_frontend(h, name="app"):
    """Helper generator: connected frontend with a registered kernel."""
    fe = h.frontend(name)
    yield from fe.open()
    return fe


# ---------------------------------------------------------------------------
# Malloc: create PTE + allocate swap; NO device interaction
# ---------------------------------------------------------------------------

def test_malloc_defers_device_allocation(harness):
    h = harness
    device = h.driver.devices[0]

    def app():
        fe = yield from open_frontend(h)
        free_before = device.free_memory
        vptr = yield from fe.cuda_malloc(512 * MIB)
        assert vptr != 0
        # No device memory consumed yet (beyond vGPU context reservations).
        assert device.free_memory == free_before
        assert h.memory.swap.used_bytes == 512 * MIB
        yield from fe.cuda_thread_exit()

    p = h.spawn(app())
    h.run(until=p)


def test_malloc_returns_virtual_not_device_addresses(harness):
    h = harness

    def app():
        fe = yield from open_frontend(h)
        vptr = yield from fe.cuda_malloc(MIB)
        from repro.core.memory.page_table import VIRTUAL_BASE

        assert vptr >= VIRTUAL_BASE  # far from the device address space
        yield from fe.cuda_thread_exit()

    p = h.spawn(app())
    h.run(until=p)


def test_malloc_swap_exhaustion_error(harness):
    """Table 1: 'Swap memory cannot be allocated'."""
    h = Harness()
    h.runtime.memory.swap.capacity_bytes = 100 * MIB

    def app():
        fe = yield from open_frontend(h)
        with pytest.raises(RuntimeApiError) as e:
            yield from fe.cuda_malloc(200 * MIB)
        assert e.value.code == RuntimeErrorCode.SWAP_ALLOCATION_FAILED
        yield from fe.cuda_thread_exit()

    p = h.spawn(app())
    h.run(until=p)


# ---------------------------------------------------------------------------
# Copy_HD: check PTE, move to swap; deferral + coalescing
# ---------------------------------------------------------------------------

def test_copy_hd_without_pte_is_no_valid_pte(harness):
    h = harness

    def app():
        fe = yield from open_frontend(h)
        with pytest.raises(RuntimeApiError) as e:
            yield from fe.cuda_memcpy_h2d(0xBAD, MIB)
        assert e.value.code == RuntimeErrorCode.NO_VALID_PTE
        yield from fe.cuda_thread_exit()

    p = h.spawn(app())
    h.run(until=p)
    assert h.stats.bad_calls_detected == 1


def test_copy_hd_beyond_allocation_detected_before_gpu(harness):
    """Bad memory operations are caught by the memory manager without
    overloading the CUDA runtime (§4.5)."""
    h = harness
    device = h.driver.devices[0]

    def app():
        fe = yield from open_frontend(h)
        vptr = yield from fe.cuda_malloc(MIB)
        with pytest.raises(RuntimeApiError) as e:
            yield from fe.cuda_memcpy_h2d(vptr, 2 * MIB)
        assert e.value.code == RuntimeErrorCode.SWAP_SIZE_MISMATCH
        yield from fe.cuda_thread_exit()

    p = h.spawn(app())
    h.run(until=p)
    assert device.bytes_copied == 0  # the GPU never saw the bad call


def test_multiple_copies_coalesce_into_one_bulk_transfer(harness):
    """Several copy_HD calls into one allocation → a single device
    transfer at launch (§4.5)."""
    h = harness

    def app():
        fe = yield from open_frontend(h)
        k = make_kernel()
        vptr = yield from fe.cuda_malloc(64 * MIB)
        for _ in range(5):
            yield from fe.cuda_memcpy_h2d(vptr, 64 * MIB)
        yield from fe.launch_kernel(k, [vptr])
        yield from fe.cuda_thread_exit()

    p = h.spawn(app())
    h.run(until=p)
    assert h.stats.h2d_requests == 5
    assert h.stats.h2d_device_transfers == 1


# ---------------------------------------------------------------------------
# Copy_DH: write back only when device copy is authoritative
# ---------------------------------------------------------------------------

def test_copy_dh_before_any_launch_served_from_swap(harness):
    h = harness
    device = h.driver.devices[0]

    def app():
        fe = yield from open_frontend(h)
        vptr = yield from fe.cuda_malloc(32 * MIB)
        yield from fe.cuda_memcpy_h2d(vptr, 32 * MIB)
        copied_before = device.bytes_copied
        yield from fe.cuda_memcpy_d2h(vptr, 32 * MIB)
        assert device.bytes_copied == copied_before  # no device traffic
        yield from fe.cuda_thread_exit()

    p = h.spawn(app())
    h.run(until=p)


def test_copy_dh_after_kernel_writes_back(harness):
    h = harness
    device = h.driver.devices[0]

    def app():
        fe = yield from open_frontend(h)
        k = make_kernel()
        vptr = yield from fe.cuda_malloc(32 * MIB)
        yield from fe.cuda_memcpy_h2d(vptr, 32 * MIB)
        yield from fe.launch_kernel(k, [vptr])
        before = device.bytes_copied
        yield from fe.cuda_memcpy_d2h(vptr, 32 * MIB)
        assert device.bytes_copied == before + 32 * MIB  # D2H happened
        yield from fe.cuda_thread_exit()

    p = h.spawn(app())
    h.run(until=p)


def test_copy_dh_invalid_pointer(harness):
    h = harness

    def app():
        fe = yield from open_frontend(h)
        with pytest.raises(RuntimeApiError) as e:
            yield from fe.cuda_memcpy_d2h(0x123, MIB)
        assert e.value.code == RuntimeErrorCode.NO_VALID_PTE
        yield from fe.cuda_thread_exit()

    p = h.spawn(app())
    h.run(until=p)


# ---------------------------------------------------------------------------
# Free
# ---------------------------------------------------------------------------

def test_free_releases_swap_and_device(harness):
    h = harness
    device = h.driver.devices[0]

    def app():
        fe = yield from open_frontend(h)
        k = make_kernel()
        vptr = yield from fe.cuda_malloc(64 * MIB)
        yield from fe.cuda_memcpy_h2d(vptr, 64 * MIB)
        yield from fe.launch_kernel(k, [vptr])
        used_on_device = device.memory_capacity - device.free_memory
        yield from fe.cuda_free(vptr)
        assert h.memory.swap.used_bytes == 0
        assert device.memory_capacity - device.free_memory < used_on_device
        yield from fe.cuda_thread_exit()

    p = h.spawn(app())
    h.run(until=p)


def test_free_invalid_pointer(harness):
    h = harness

    def app():
        fe = yield from open_frontend(h)
        with pytest.raises(RuntimeApiError) as e:
            yield from fe.cuda_free(0x42)
        assert e.value.code == RuntimeErrorCode.NO_VALID_PTE
        yield from fe.cuda_thread_exit()

    p = h.spawn(app())
    h.run(until=p)


def test_double_free_detected(harness):
    h = harness

    def app():
        fe = yield from open_frontend(h)
        vptr = yield from fe.cuda_malloc(MIB)
        yield from fe.cuda_free(vptr)
        with pytest.raises(RuntimeApiError):
            yield from fe.cuda_free(vptr)
        yield from fe.cuda_thread_exit()

    p = h.spawn(app())
    h.run(until=p)


# ---------------------------------------------------------------------------
# Launch: allocate-on-demand, transfer-on-demand
# ---------------------------------------------------------------------------

def test_launch_with_unknown_pointer_rejected_in_runtime(harness):
    h = harness
    device = h.driver.devices[0]

    def app():
        fe = yield from open_frontend(h)
        with pytest.raises(RuntimeApiError) as e:
            yield from fe.launch_kernel(make_kernel(), [0xBAD])
        assert e.value.code == RuntimeErrorCode.NO_VALID_PTE
        yield from fe.cuda_thread_exit()

    p = h.spawn(app())
    h.run(until=p)
    assert device.kernels_executed == 0  # never reached the GPU


def test_launch_allocates_and_transfers_on_demand(harness):
    h = harness
    device = h.driver.devices[0]

    def app():
        fe = yield from open_frontend(h)
        k = make_kernel()
        vptr = yield from fe.cuda_malloc(128 * MIB)
        yield from fe.cuda_memcpy_h2d(vptr, 128 * MIB)
        free_before_launch = device.free_memory
        yield from fe.launch_kernel(k, [vptr])
        assert device.free_memory == free_before_launch - 128 * MIB
        assert device.kernels_executed == 1
        yield from fe.cuda_thread_exit()

    p = h.spawn(app())
    h.run(until=p)
    assert h.stats.kernels_launched == 1


def test_read_only_args_do_not_dirty(harness):
    h = harness
    device = h.driver.devices[0]

    def app():
        fe = yield from open_frontend(h)
        k = make_kernel()
        a = yield from fe.cuda_malloc(16 * MIB)
        b = yield from fe.cuda_malloc(16 * MIB)
        yield from fe.cuda_memcpy_h2d(a, 16 * MIB)
        yield from fe.launch_kernel(k, [a, b], read_only=[a])
        before = device.bytes_copied
        # Reading back the read-only input requires no device traffic:
        # its swap copy is still authoritative.
        yield from fe.cuda_memcpy_d2h(a, 16 * MIB)
        assert device.bytes_copied == before
        # The written output does need a write-back.
        yield from fe.cuda_memcpy_d2h(b, 16 * MIB)
        assert device.bytes_copied == before + 16 * MIB
        yield from fe.cuda_thread_exit()

    p = h.spawn(app())
    h.run(until=p)


def test_launch_without_configure_call_errors(harness):
    h = harness

    def app():
        fe = yield from open_frontend(h)
        vptr = yield from fe.cuda_malloc(MIB)
        from repro.simcuda import CudaRuntimeError

        with pytest.raises(CudaRuntimeError):
            yield from fe.cuda_launch(make_kernel(), [vptr])
        yield from fe.cuda_thread_exit()

    p = h.spawn(app())
    h.run(until=p)


# ---------------------------------------------------------------------------
# Device management overrides
# ---------------------------------------------------------------------------

def test_set_device_ignored_and_count_is_virtual(harness):
    h = Harness(config=None)

    def app():
        fe = yield from open_frontend(h)
        yield from fe.cuda_set_device(12345)  # ignored, no error
        count = yield from fe.cuda_get_device_count()
        # 1 physical GPU, 4 vGPUs by default → the app sees 4 "devices".
        assert count == 4
        yield from fe.cuda_thread_exit()

    p = h.spawn(app())
    h.run(until=p)


# ---------------------------------------------------------------------------
# Isolation between applications
# ---------------------------------------------------------------------------

def test_pointer_isolation_across_connections(harness):
    h = harness
    leaked = {}

    def app1():
        fe = yield from open_frontend(h, "app1")
        leaked["vptr"] = yield from fe.cuda_malloc(MIB)
        yield h.env.timeout(0.1)
        yield from fe.cuda_thread_exit()

    def app2():
        fe = yield from open_frontend(h, "app2")
        yield h.env.timeout(0.01)  # let app1 allocate first
        with pytest.raises(RuntimeApiError) as e:
            yield from fe.cuda_memcpy_h2d(leaked["vptr"], MIB)
        assert e.value.code == RuntimeErrorCode.NO_VALID_PTE
        yield from fe.cuda_thread_exit()

    p1 = h.spawn(app1())
    p2 = h.spawn(app2())
    h.run(until=p1)
    h.run(until=p2)
