"""Whole-system torture tests: every mechanism at once.

These integration scenarios combine GPU sharing, memory swapping,
migration, failures and inter-node offloading in single runs and assert
the global invariants that must survive the interaction of all
features: every job completes, memory accounting balances, the system
quiesces.
"""

import pytest

from repro.core import Frontend, NodeRuntime, RuntimeConfig
from repro.core.fault import FailureInjector, HotplugEvent
from repro.sim import Environment, RngStreams
from repro.simcuda import (
    CudaDriver,
    FatBinary,
    KernelDescriptor,
    QUADRO_2000,
    TESLA_C1060,
    TESLA_C2050,
)

MIB = 1024**2


def mixed_app(env, runtime, name, rng, results):
    """A randomized application: variable buffers, kernels, CPU phases."""

    def app():
        fe = Frontend(env, runtime.listener, name=name)
        yield from fe.open()
        n_buffers = int(rng.integers(1, 4))
        kernel = KernelDescriptor(
            name=f"{name}-k",
            flops=float(rng.uniform(0.1, 0.6)) * TESLA_C2050.effective_gflops * 1e9,
        )
        fb = FatBinary()
        handle = yield from fe.register_fat_binary(fb)
        yield from fe.register_function(handle, kernel)
        sizes = [int(rng.integers(32, 400)) * MIB for _ in range(n_buffers)]
        ptrs = []
        for size in sizes:
            p = yield from fe.cuda_malloc(size)
            yield from fe.cuda_memcpy_h2d(p, size)
            ptrs.append(p)
        for _ in range(int(rng.integers(2, 6))):
            yield from fe.launch_kernel(kernel, ptrs)
            yield env.timeout(float(rng.uniform(0.05, 0.6)))
        for p, size in zip(ptrs, sizes):
            yield from fe.cuda_memcpy_d2h(p, size)
            yield from fe.cuda_free(p)
        yield from fe.cuda_thread_exit()
        results.append(name)

    return app()


def test_sharing_swapping_migration_and_failure_together():
    env = Environment()
    driver = CudaDriver(env, [TESLA_C2050, TESLA_C1060, QUADRO_2000])
    runtime = NodeRuntime(
        env,
        driver,
        RuntimeConfig(
            vgpus_per_device=3,
            migration_enabled=True,
            checkpoint_kernel_seconds=0.5,
        ),
    )
    env.process(runtime.start())
    rngs = RngStreams(11)
    results = []
    for i in range(12):
        env.process(
            mixed_app(env, runtime, f"mix{i}", rngs.spawn(f"app{i}").stream("x"),
                      results)
        )
    # One GPU dies mid-run; the others absorb its contexts.
    FailureInjector(
        runtime, [HotplugEvent(at_seconds=3.0, action="fail", device_index=1)]
    ).start()
    env.run()

    assert len(results) == 12  # nobody lost
    # System quiesced cleanly.
    assert runtime.memory.swap.used_bytes == 0
    assert runtime.scheduler.waiting_count == 0
    assert all(v.idle or v.retired for v in runtime.scheduler.vgpus)
    # Healthy devices hold only their vGPU context reservations.
    for device in (driver.devices[0], driver.devices[2]):
        assert device.allocator.used_bytes == 3 * device.spec.context_reservation_bytes


def test_cluster_offload_with_remote_failure():
    """Node B offloads to node A; one of A's GPUs fails while serving the
    offloaded work; everything still completes."""
    env = Environment()
    cfg = RuntimeConfig(vgpus_per_device=2, offload_enabled=True)
    driver_a = CudaDriver(env, [TESLA_C2050, TESLA_C1060])
    driver_b = CudaDriver(env, [QUADRO_2000])
    node_a = NodeRuntime(env, driver_a, cfg, name="A")
    node_b = NodeRuntime(env, driver_b, cfg, name="B")
    node_a.offloader.add_peer(node_b)
    node_b.offloader.add_peer(node_a)
    env.process(node_a.start())
    env.process(node_b.start())

    rngs = RngStreams(23)
    results = []
    for i in range(8):  # all submitted to the small node B
        env.process(
            mixed_app(env, node_b, f"j{i}", rngs.spawn(f"j{i}").stream("x"), results)
        )
    FailureInjector(
        node_a, [HotplugEvent(at_seconds=4.0, action="fail", device_index=0)]
    ).start()
    env.run()

    assert len(results) == 8
    assert node_b.stats.offloads_out >= 1  # offloading actually happened
    # Both nodes quiesced.
    for runtime in (node_a, node_b):
        assert runtime.memory.swap.used_bytes == 0
        assert runtime.scheduler.waiting_count == 0


def test_hotplug_churn_under_load():
    """GPUs leave and join while a batch runs; the batch completes and
    the final device population serves everything."""
    env = Environment()
    driver = CudaDriver(env, [TESLA_C2050, TESLA_C1060])
    runtime = NodeRuntime(env, driver, RuntimeConfig(vgpus_per_device=2))
    env.process(runtime.start())
    rngs = RngStreams(5)
    results = []
    for i in range(10):
        env.process(
            mixed_app(env, runtime, f"c{i}", rngs.spawn(f"c{i}").stream("x"), results)
        )
    FailureInjector(
        runtime,
        [
            HotplugEvent(at_seconds=2.0, action="fail", device_index=1),
            HotplugEvent(at_seconds=4.0, action="add", spec=TESLA_C2050),
            HotplugEvent(at_seconds=6.0, action="add", spec=QUADRO_2000),
        ],
    ).start()
    env.run()
    assert len(results) == 10
    assert runtime.stats.failures_recovered >= 0  # lazy discovery may vary
    # Failed devices remain registered (marked failed); the additions are
    # live: 2 initial + 2 added, of which one failed.
    assert driver.device_count() == 4
    healthy = [d for d in driver.devices if not d.failed]
    assert len(healthy) == 3
