"""Inter-node offloading tests (paper §4.7)."""

from repro.core import Frontend, NodeRuntime, RuntimeConfig
from repro.simcuda import CudaDriver, KernelDescriptor, TESLA_C1060, TESLA_C2050
from repro.sim import Environment

MIB = 1024**2


class TwoNodeHarness:
    """Node A (3 GPUs) and node B (1 GPU) with mutual offload peering."""

    def __init__(self, vgpus=4, offload=True, margin=0.5):
        self.env = Environment()
        cfg = RuntimeConfig(
            vgpus_per_device=vgpus, offload_enabled=offload, offload_load_margin=margin
        )
        self.driver_a = CudaDriver(self.env, [TESLA_C2050, TESLA_C2050, TESLA_C1060])
        self.driver_b = CudaDriver(self.env, [TESLA_C1060])
        self.node_a = NodeRuntime(self.env, self.driver_a, cfg, name="nodeA")
        self.node_b = NodeRuntime(self.env, self.driver_b, cfg, name="nodeB")
        self.node_a.offloader.add_peer(self.node_b)
        self.node_b.offloader.add_peer(self.node_a)
        self.env.process(self.node_a.start())
        self.env.process(self.node_b.start())

    def job(self, node, name, results, kernels=3, kernel_s=0.5, cpu_s=0.1):
        def app():
            fe = Frontend(self.env, node.listener, name=name)
            yield from fe.open()
            k = KernelDescriptor(
                name=f"{name}-k",
                flops=kernel_s * TESLA_C2050.effective_gflops * 1e9,
            )
            a = yield from fe.cuda_malloc(16 * MIB)
            yield from fe.cuda_memcpy_h2d(a, 16 * MIB)
            for _ in range(kernels):
                yield from fe.launch_kernel(k, [a])
                if cpu_s:
                    yield self.env.timeout(cpu_s)
            yield from fe.cuda_memcpy_d2h(a, 16 * MIB)
            yield from fe.cuda_thread_exit()
            results[name] = self.env.now

        return self.env.process(app(), name=name)


def test_overloaded_node_offloads_to_idle_peer():
    h = TwoNodeHarness(vgpus=1)
    results = {}
    # 6 jobs all hammer node B (1 GPU, 1 vGPU); node A idles.
    for i in range(6):
        h.job(h.node_b, f"j{i}", results)
    h.env.run()
    assert len(results) == 6
    assert h.node_b.stats.offloads_out >= 1
    assert h.node_a.stats.offloads_in == h.node_b.stats.offloads_out
    # Offloaded kernels actually executed on node A's devices.
    assert sum(d.kernels_executed for d in h.driver_a.devices) >= 3


def test_no_offload_when_balanced():
    h = TwoNodeHarness(vgpus=4)
    results = {}
    h.job(h.node_a, "a0", results)
    h.job(h.node_b, "b0", results)
    h.env.run()
    assert len(results) == 2
    assert h.node_a.stats.offloads_out == 0
    assert h.node_b.stats.offloads_out == 0


def test_offload_disabled_keeps_jobs_local():
    h = TwoNodeHarness(vgpus=1, offload=False)
    results = {}
    for i in range(4):
        h.job(h.node_b, f"j{i}", results)
    h.env.run()
    assert len(results) == 4
    assert h.node_b.stats.offloads_out == 0
    assert sum(d.kernels_executed for d in h.driver_a.devices) == 0


def test_offload_improves_makespan_under_imbalance():
    def run(offload):
        h = TwoNodeHarness(vgpus=1, offload=offload)
        results = {}
        for i in range(6):
            h.job(h.node_b, f"j{i}", results, kernels=4, kernel_s=0.5)
        h.env.run()
        return max(results.values())

    assert run(offload=True) < run(offload=False)


def test_offloaded_connection_is_transparent():
    """The application cannot tell it was offloaded: same results, same
    protocol; only the runtime stats differ."""
    h = TwoNodeHarness(vgpus=1)
    results = {}
    for i in range(3):
        h.job(h.node_b, f"j{i}", results)
    h.env.run()
    assert len(results) == 3  # every app completed normally


def test_cannot_peer_with_self():
    import pytest

    h = TwoNodeHarness()
    with pytest.raises(ValueError):
        h.node_a.offloader.add_peer(h.node_a)
