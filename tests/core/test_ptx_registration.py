"""PTX-derived registration: the runtime detects sharing-unsafe kernels
from the fat binary's PTX image, not from application claims."""

from repro.simcuda import FatBinary

from tests.core.conftest import Harness, MIB

MALLOC_PTX = """
.version 3.0
.target sm_20
.address_size 64
.visible .entry builder ( .param .u64 out )
{
    .reg .s64 %rd<4>;
    .param .u64 retval;
    mov.u64 %rd1, 4096;
    call.uni (retval), malloc, (%rd1);
    ret;
}
"""

CLEAN_PTX = """
.version 3.0
.target sm_20
.address_size 64
.visible .entry square ( .param .u64 data )
{
    .reg .f32 %f<3>;
    .reg .s64 %rd<3>;
    ld.param.u64 %rd1, [data];
    cvta.to.global.u64 %rd2, %rd1;
    ld.global.f32 %f1, [%rd2];
    mul.f32 %f2, %f1, %f1;
    st.global.f32 [%rd2], %f2;
    ret;
}
"""


def test_from_ptx_builds_descriptors():
    fb = FatBinary.from_ptx(CLEAN_PTX, flops={"square": 2e9})
    assert "square" in fb.functions
    assert fb.functions["square"].flops == 2e9
    assert not fb.needs_exclusion_from_sharing


def test_malloc_kernel_excludes_context_from_sharing(harness):
    h = harness

    def app():
        fe = h.frontend("dyn")
        yield from fe.open()
        fb = FatBinary.from_ptx(MALLOC_PTX)
        yield from fe.register_fat_binary(fb)
        a = yield from fe.cuda_malloc(MIB)
        yield from fe.launch_kernel(fb.functions["builder"], [a])
        yield from fe.cuda_thread_exit()

    p = h.spawn(app())
    h.run(until=p)
    ctx = h.runtime.dispatcher.contexts[0]
    assert ctx.excluded_from_sharing


def test_clean_ptx_kernel_stays_shareable(harness):
    h = harness

    def app():
        fe = h.frontend("clean")
        yield from fe.open()
        fb = FatBinary.from_ptx(CLEAN_PTX)
        yield from fe.register_fat_binary(fb)
        a = yield from fe.cuda_malloc(MIB)
        yield from fe.launch_kernel(fb.functions["square"], [a])
        yield from fe.cuda_thread_exit()

    p = h.spawn(app())
    h.run(until=p)
    ctx = h.runtime.dispatcher.contexts[0]
    assert not ctx.excluded_from_sharing
    assert h.stats.kernels_launched == 1
