"""Unit + property tests for the page table and the Figure 4 state machine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core.errors import RuntimeApiError, RuntimeErrorCode
from repro.core.memory.page_table import (
    EntryType,
    PageTable,
    PageTableEntry,
    VIRTUAL_BASE,
)


class Ctx:
    """Stand-in context object (the page table only uses identity)."""

    def __repr__(self):
        return "<ctx>"


def test_create_entry_assigns_distinct_virtual_addresses():
    pt = PageTable()
    ctx = Ctx()
    a = pt.create_entry(ctx, 1000)
    b = pt.create_entry(ctx, 1000)
    assert a.virtual_ptr != b.virtual_ptr
    assert a.virtual_ptr >= VIRTUAL_BASE


def test_lookup_translates_and_isolates():
    pt = PageTable()
    ctx1, ctx2 = Ctx(), Ctx()
    pte = pt.create_entry(ctx1, 100)
    assert pt.lookup(ctx1, pte.virtual_ptr) is pte
    # Isolation: another context cannot resolve the pointer.
    with pytest.raises(RuntimeApiError) as e:
        pt.lookup(ctx2, pte.virtual_ptr)
    assert e.value.code == RuntimeErrorCode.NO_VALID_PTE


def test_lookup_unknown_pointer_fails():
    pt = PageTable()
    with pytest.raises(RuntimeApiError):
        pt.lookup(Ctx(), 0xDEADBEEF)


def test_allocated_bytes_counts_resident_only():
    pt = PageTable()
    ctx = Ctx()
    a = pt.create_entry(ctx, 100)
    b = pt.create_entry(ctx, 200)
    assert pt.allocated_bytes(ctx) == 0
    a.on_device_allocated(0x1000)
    assert pt.allocated_bytes(ctx) == 100
    b.on_device_allocated(0x2000)
    assert pt.allocated_bytes(ctx) == 300
    assert pt.total_bytes(ctx) == 300


def test_drop_context_removes_everything():
    pt = PageTable()
    ctx = Ctx()
    ptes = [pt.create_entry(ctx, 10) for _ in range(3)]
    dropped = pt.drop_context(ctx)
    assert len(dropped) == 3
    for pte in ptes:
        with pytest.raises(RuntimeApiError):
            pt.lookup(ctx, pte.virtual_ptr)


def test_virtual_address_exhaustion_error():
    """Table 1: 'A virtual address cannot be assigned'."""
    pt = PageTable()
    pt.virtual_space_limit = VIRTUAL_BASE + 1024
    ctx = Ctx()
    pt.create_entry(ctx, 1024)
    with pytest.raises(RuntimeApiError) as e:
        pt.create_entry(ctx, 1)
    assert e.value.code == RuntimeErrorCode.VIRTUAL_ADDRESS_EXHAUSTED


# ---------------------------------------------------------------------------
# Figure 4 state machine
# ---------------------------------------------------------------------------

def fresh_pte():
    return PageTableEntry(VIRTUAL_BASE, 1024, EntryType.LINEAR)


def test_initial_state_fff():
    pte = fresh_pte()
    assert pte.flags == (False, False, False)
    pte.check_invariants()


def test_host_write_moves_to_ftf():
    pte = fresh_pte()
    pte.on_host_write()
    assert pte.flags == (False, True, False)


def test_launch_sequence_reaches_tft():
    """malloc → copyHD → (allocate, transfer, kernel write) = T/F/T."""
    pte = fresh_pte()
    pte.on_host_write()
    pte.on_device_allocated(0x1000)
    assert pte.flags == (True, True, False)
    pte.on_copied_to_device()
    assert pte.flags == (True, False, False)
    pte.on_kernel_write(now=1.0)
    assert pte.flags == (True, False, True)
    assert pte.last_use == 1.0


def test_copy_dh_cleans_dirty_state():
    pte = fresh_pte()
    pte.on_host_write()
    pte.on_device_allocated(0x1000)
    pte.on_copied_to_device()
    pte.on_kernel_write(now=0)
    pte.on_copied_to_swap()
    assert pte.flags == (True, False, False)


def test_swap_out_returns_to_host_only_state():
    pte = fresh_pte()
    pte.on_host_write()
    pte.on_device_allocated(0x1000)
    pte.on_copied_to_device()
    pte.on_kernel_write(now=0)
    pte.on_copied_to_swap()
    pte.on_device_released()
    assert pte.flags == (False, True, False)
    assert pte.device_ptr is None


def test_release_while_dirty_asserts():
    """Swap must write back before dropping the device copy."""
    pte = fresh_pte()
    pte.on_host_write()
    pte.on_device_allocated(0x1000)
    pte.on_copied_to_device()
    pte.on_kernel_write(now=0)
    with pytest.raises(AssertionError):
        pte.on_device_released()


def test_kernel_read_does_not_dirty():
    pte = fresh_pte()
    pte.on_host_write()
    pte.on_device_allocated(0x1000)
    pte.on_copied_to_device()
    pte.on_kernel_read(now=2.0)
    assert pte.flags == (True, False, False)
    assert pte.last_use == 2.0


class PteStateMachine(RuleBasedStateMachine):
    """Random walks over the Figure 4 transitions can only ever visit the
    five legal states."""

    def __init__(self):
        super().__init__()
        self.pte = fresh_pte()
        self.clock = 0.0

    @rule()
    def host_write(self):
        self.pte.on_host_write()

    @precondition(lambda self: not self.pte.is_allocated)
    @rule()
    def allocate(self):
        self.pte.on_device_allocated(0x1000)

    @precondition(lambda self: self.pte.is_allocated and self.pte.to_copy_2dev)
    @rule()
    def transfer_h2d(self):
        self.pte.on_copied_to_device()

    @precondition(
        lambda self: self.pte.is_allocated and not self.pte.to_copy_2dev
    )
    @rule(write=st.booleans())
    def kernel(self, write):
        self.clock += 1
        if write:
            self.pte.on_kernel_write(self.clock)
        else:
            self.pte.on_kernel_read(self.clock)

    @precondition(lambda self: self.pte.to_copy_2swap)
    @rule()
    def write_back(self):
        self.pte.on_copied_to_swap()

    @precondition(
        lambda self: self.pte.is_allocated and not self.pte.to_copy_2swap
    )
    @rule()
    def release(self):
        self.pte.on_device_released()

    @invariant()
    def always_legal(self):
        self.pte.check_invariants()


TestPteStateMachine = PteStateMachine.TestCase
TestPteStateMachine.settings = settings(max_examples=60, stateful_step_count=30, deadline=None)


@given(sizes=st.lists(st.integers(1, 10_000), min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_virtual_addresses_never_overlap(sizes):
    pt = PageTable()
    ctx = Ctx()
    spans = []
    for s in sizes:
        pte = pt.create_entry(ctx, s)
        spans.append((pte.virtual_ptr, pte.virtual_ptr + s))
    spans.sort()
    for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
        assert e1 <= s2
