"""Scheduler + scheduling-policy tests (paper §2 Configurable Scheduling)."""

import pytest

from repro.core import RuntimeConfig
from repro.core.policies import CreditPolicy, FcfsPolicy, SjfPolicy, make_policy
from repro.simcuda import KernelDescriptor, QUADRO_2000, TESLA_C1060, TESLA_C2050

from tests.core.conftest import Harness, MIB


def kernel(seconds, name="k"):
    return KernelDescriptor(
        name=name, flops=seconds * TESLA_C2050.effective_gflops * 1e9
    )


def job(h, name, kernel_s, results, kernels=1, estimated=None):
    def app():
        fe = h.frontend(name, estimated_gpu_seconds=estimated)
        yield from fe.open()
        k = kernel(kernel_s, f"{name}-k")
        a = yield from fe.cuda_malloc(8 * MIB)
        for _ in range(kernels):
            yield from fe.launch_kernel(k, [a])
        yield from fe.cuda_thread_exit()
        results.append(name)

    return app()


# ---------------------------------------------------------------------------
# policy factory + units
# ---------------------------------------------------------------------------

def test_make_policy():
    assert isinstance(make_policy("fcfs"), FcfsPolicy)
    assert isinstance(make_policy("sjf"), SjfPolicy)
    assert isinstance(make_policy("credit"), CreditPolicy)
    with pytest.raises(ValueError):
        make_policy("nope")


def test_config_validates_policy():
    with pytest.raises(ValueError):
        RuntimeConfig(policy="wrong")
    with pytest.raises(ValueError):
        RuntimeConfig(vgpus_per_device=0)


# ---------------------------------------------------------------------------
# FCFS + load balancing placement
# ---------------------------------------------------------------------------

def test_fcfs_order_preserved():
    h = Harness(config=RuntimeConfig(vgpus_per_device=1))
    done = []
    for name in ("first", "second", "third"):
        h.spawn(job(h, name, kernel_s=0.5, results=done))
    h.run()
    assert done == ["first", "second", "third"]


def test_placement_balances_active_vgpus_across_gpus():
    """The paper's FCFS keeps active vGPU counts uniform across GPUs."""
    h = Harness(
        specs=[TESLA_C2050, TESLA_C2050, TESLA_C1060],
        config=RuntimeConfig(vgpus_per_device=2),
    )
    done = []
    for i in range(3):
        h.spawn(job(h, f"j{i}", kernel_s=2.0, results=done))
    # Run long enough for all three to be bound but none finished.
    h.run(until=2.0)
    counts = h.scheduler.active_per_device()
    assert len(counts) == 3  # one job per physical GPU
    assert set(counts.values()) == {1}
    h.run()
    assert len(done) == 3


def test_waiting_contexts_served_when_vgpu_frees():
    h = Harness(config=RuntimeConfig(vgpus_per_device=2))
    done = []
    for i in range(5):
        h.spawn(job(h, f"j{i}", kernel_s=0.3, results=done))
    h.run()
    assert len(done) == 5
    assert h.stats.bindings == 5


# ---------------------------------------------------------------------------
# SJF
# ---------------------------------------------------------------------------

def test_sjf_prefers_short_jobs_from_waiting_list():
    h = Harness(config=RuntimeConfig(vgpus_per_device=1, policy="sjf"))
    done = []

    def submit():
        # A long job takes the single vGPU; three more queue up.
        h.spawn(job(h, "long0", kernel_s=1.0, results=done, estimated=1.0))
        yield h.env.timeout(0.9)  # let long0 bind (vGPU startup ~0.08s)
        h.spawn(job(h, "big", kernel_s=0.6, results=done, estimated=0.6))
        h.spawn(job(h, "small", kernel_s=0.1, results=done, estimated=0.1))
        h.spawn(job(h, "mid", kernel_s=0.3, results=done, estimated=0.3))

    h.spawn(submit())
    h.run()
    assert done[0] == "long0"
    assert done[1:] == ["small", "mid", "big"]


# ---------------------------------------------------------------------------
# credit-based
# ---------------------------------------------------------------------------

def test_credit_policy_favours_low_usage_context():
    """When contexts contend for the single vGPU (the CPU-phase reaper
    unbinds them between phases), the one with less consumed GPU time is
    served first — the light job is not starved behind the heavy one."""
    h = Harness(
        config=RuntimeConfig(
            vgpus_per_device=1, policy="credit", unbind_on_cpu_phase_s=0.005
        )
    )
    order = []

    def multi_phase(name, kernel_s, phases):
        def app():
            fe = h.frontend(name)
            yield from fe.open()
            k = kernel(kernel_s, f"{name}-k")
            a = yield from fe.cuda_malloc(4 * MIB)
            for i in range(phases):
                yield from fe.launch_kernel(k, [a])
                order.append((name, i))
                yield h.env.timeout(0.05)  # CPU phase: reaper can unbind
            yield from fe.cuda_thread_exit()

        return app()

    h.spawn(multi_phase("heavy", 0.5, 3))
    h.spawn(multi_phase("light", 0.05, 3))
    h.run()
    # The light job's phases interleave with the heavy job's rather than
    # queueing entirely behind them.
    first_light = min(i for i, (n, _p) in enumerate(order) if n == "light")
    last_heavy = max(i for i, (n, _p) in enumerate(order) if n == "heavy")
    assert first_light < last_heavy


def test_credit_pick_next_orders_by_consumed_gpu_time():
    from repro.core.context import Context
    from repro.sim import Environment

    env = Environment()
    a, b, c = Context(env, "a"), Context(env, "b"), Context(env, "c")
    a.gpu_seconds_used = 5.0
    b.gpu_seconds_used = 0.5
    c.gpu_seconds_used = 2.0
    policy = CreditPolicy()
    assert policy.pick_next([a, b, c]) is b
    assert policy.pick_next([]) is None


def test_sjf_pick_next_unknown_estimates_go_last():
    from repro.core.context import Context
    from repro.sim import Environment

    env = Environment()
    known = Context(env, "known")
    known.estimated_gpu_seconds = 3.0
    unknown = Context(env, "unknown")
    policy = SjfPolicy()
    assert policy.pick_next([unknown, known]) is known


# ---------------------------------------------------------------------------
# binding bookkeeping
# ---------------------------------------------------------------------------

def test_bindings_and_unbindings_balance_at_quiescence():
    h = Harness(config=RuntimeConfig(vgpus_per_device=2))
    done = []
    for i in range(4):
        h.spawn(job(h, f"j{i}", kernel_s=0.2, results=done))
    h.run()
    assert h.stats.bindings == h.stats.unbindings == 4
    assert all(v.idle for v in h.scheduler.vgpus)


def test_exit_while_waiting_cancels_cleanly():
    """A job that exits before ever being granted a vGPU must not leave a
    dangling waiting entry."""
    h = Harness(config=RuntimeConfig(vgpus_per_device=1))
    done = []

    def impatient():
        fe = h.frontend("impatient")
        yield from fe.open()
        a = yield from fe.cuda_malloc(MIB)
        # Exits without ever launching: never requests a binding.
        yield from fe.cuda_free(a)
        yield from fe.cuda_thread_exit()
        done.append("impatient")

    h.spawn(job(h, "worker", kernel_s=0.5, results=done))
    h.spawn(impatient())
    h.run()
    assert set(done) == {"worker", "impatient"}
    assert h.scheduler.waiting_count == 0
