"""EDF (deadline) policy tests — the §2 QoS scheduling hook."""

from repro.core import RuntimeConfig
from repro.core.context import Context
from repro.core.policies import DeadlinePolicy, make_policy
from repro.sim import Environment
from repro.simcuda import KernelDescriptor, TESLA_C2050

from tests.core.conftest import Harness, MIB


def test_make_policy_edf():
    assert isinstance(make_policy("edf"), DeadlinePolicy)


def test_pick_next_earliest_deadline_first():
    env = Environment()
    a, b, c = Context(env, "a"), Context(env, "b"), Context(env, "c")
    a.deadline_s = 100.0
    b.deadline_s = 50.0
    # c has no deadline: goes last
    policy = DeadlinePolicy()
    assert policy.pick_next([a, b, c]) is b
    assert policy.pick_next([a, c]) is a
    assert policy.pick_next([c]) is c
    assert policy.pick_next([]) is None


def test_edf_end_to_end_prefers_urgent_job():
    h = Harness(config=RuntimeConfig(vgpus_per_device=1, policy="edf"))
    order = []

    def job(name, deadline, delay):
        def app():
            yield h.env.timeout(delay)
            fe = h.frontend(name)
            fe.deadline_s = deadline
            yield from fe.open()
            seconds = 3.0 if name == "blocker" else 0.5
            k = KernelDescriptor(
                name=f"{name}-k", flops=seconds * TESLA_C2050.effective_gflops * 1e9
            )
            a = yield from fe.cuda_malloc(4 * MIB)
            yield from fe.launch_kernel(k, [a])
            yield from fe.cuda_thread_exit()
            order.append(name)

        return app()

    # "blocker" binds first; the others queue while it runs.  EDF must
    # serve "urgent" (deadline 10) before "relaxed" (deadline 100) and
    # "nodeadline", regardless of arrival order.
    h.spawn(job("blocker", None, delay=0.0))
    h.spawn(job("nodeadline", None, delay=1.0))
    h.spawn(job("relaxed", 100.0, delay=1.1))
    h.spawn(job("urgent", 10.0, delay=1.2))
    h.run()
    assert order[0] == "blocker"
    assert order[1] == "urgent"
    assert order[2] == "relaxed"
    assert order[3] == "nodeadline"
