"""Intra- and inter-application swapping (paper §4.5).

Includes the paper's worked example: three square matrices of which only
two fit the device — the bare CUDA runtime fails at the third cudaMalloc,
while the runtime's intra-application swap lets the program complete.
"""

import pytest

from repro.core import RuntimeConfig
from repro.simcuda import (
    CudaDriver,
    CudaError,
    CudaRuntimeAPI,
    CudaRuntimeError,
    GPUSpec,
    KernelDescriptor,
)
from repro.sim import Environment

from tests.core.conftest import Harness, MIB

# A small GPU makes memory pressure cheap to construct: ~448 MiB usable
# after one vGPU context reservation (64 MiB).
SMALL_GPU = GPUSpec(
    name="SmallGPU",
    sm_count=14,
    cores_per_sm=32,
    clock_ghz=1.15,
    memory_bytes=512 * MIB,
)

MATRIX = 150 * MIB  # three matrices: 450 MiB > 448 MiB usable


def kernel(name="matmul", seconds=0.05):
    return KernelDescriptor(
        name=name, flops=seconds * SMALL_GPU.effective_gflops * 1e9
    )


def open_app(h, name="app"):
    fe = h.frontend(name)
    yield from fe.open()
    return fe


# ---------------------------------------------------------------------------
# the paper's §4.5 intra-application example
# ---------------------------------------------------------------------------

def test_bare_cuda_fails_on_third_matrix():
    """On the bare CUDA runtime the third cudaMalloc fails (§4.5)."""
    env = Environment()
    driver = CudaDriver(env, [SMALL_GPU])
    api = CudaRuntimeAPI(driver)

    def app():
        yield from api.cuda_malloc(MATRIX)  # A
        yield from api.cuda_malloc(MATRIX)  # B
        yield from api.cuda_malloc(MATRIX)  # C  → OOM

    p = env.process(app())
    with pytest.raises(CudaRuntimeError) as e:
        env.run(until=p)
    assert e.value.code == CudaError.cudaErrorMemoryAllocation


def test_intra_swap_lets_oversized_application_complete():
    """Same sequence through the runtime: A is swapped out before the
    second matmul, and the program completes (§4.5 instruction trace)."""
    h = Harness(specs=[SMALL_GPU], config=RuntimeConfig(vgpus_per_device=1))

    def app():
        fe = yield from open_app(h)
        matmul = kernel()
        a = yield from fe.cuda_malloc(MATRIX)
        b = yield from fe.cuda_malloc(MATRIX)
        c = yield from fe.cuda_malloc(MATRIX)
        yield from fe.cuda_memcpy_h2d(a, MATRIX)
        yield from fe.launch_kernel(matmul, [a, b], read_only=[a])  # B = A*A
        yield from fe.launch_kernel(matmul, [b, c], read_only=[b])  # C = B*B
        yield from fe.cuda_memcpy_d2h(b, MATRIX)
        yield from fe.cuda_memcpy_d2h(c, MATRIX)
        yield from fe.cuda_thread_exit()
        return True

    p = h.spawn(app())
    h.run(until=p)
    assert p.value is True
    assert h.stats.swaps_intra >= 1
    assert h.stats.swaps_inter == 0


def test_intra_swap_prefers_lru_entry():
    """The entry not referenced by the current launch and least recently
    used is evicted first."""
    h = Harness(specs=[SMALL_GPU], config=RuntimeConfig(vgpus_per_device=1))

    def app():
        fe = yield from open_app(h)
        k = kernel()
        a = yield from fe.cuda_malloc(MATRIX)
        b = yield from fe.cuda_malloc(MATRIX)
        c = yield from fe.cuda_malloc(MATRIX)
        yield from fe.launch_kernel(k, [a])
        yield from fe.launch_kernel(k, [b])
        # Launching on C must evict A (older) not B.
        yield from fe.launch_kernel(k, [c])
        # A's PTE should now be swap-resident; B still allocated.
        ptes = {p.size: p for p in h.memory.page_table.entries_for(
            h.runtime.dispatcher.contexts[0]
        )}
        entries = h.memory.page_table.entries_for(h.runtime.dispatcher.contexts[0])
        a_pte, b_pte, c_pte = sorted(entries, key=lambda p: p.virtual_ptr)
        assert not a_pte.is_allocated
        assert b_pte.is_allocated
        assert c_pte.is_allocated
        yield from fe.cuda_thread_exit()

    p = h.spawn(app())
    h.run(until=p)


def test_intra_swap_disabled_forces_retry_or_error():
    """With intra-application swap off and nobody else to evict, the
    launch cannot make progress; the kernel-footprint guard fires when
    the working set itself cannot fit."""
    h = Harness(
        specs=[SMALL_GPU],
        config=RuntimeConfig(
            vgpus_per_device=1, enable_intra_swap=False, enable_inter_swap=False
        ),
    )
    from repro.core.errors import RuntimeApiError, RuntimeErrorCode

    def app():
        fe = yield from open_app(h)
        k = kernel()
        big = yield from fe.cuda_malloc(500 * MIB)  # larger than usable
        with pytest.raises(RuntimeApiError) as e:
            yield from fe.launch_kernel(k, [big])
        assert e.value.code == RuntimeErrorCode.KERNEL_FOOTPRINT_TOO_LARGE
        yield from fe.cuda_thread_exit()

    p = h.spawn(app())
    h.run(until=p)


def test_swap_preserves_dirty_data_roundtrip():
    """Written-then-swapped data must flow device→swap→device: the
    write-back byte counters prove the data followed the PTE."""
    h = Harness(specs=[SMALL_GPU], config=RuntimeConfig(vgpus_per_device=1))

    def app():
        fe = yield from open_app(h)
        k = kernel()
        a = yield from fe.cuda_malloc(MATRIX)
        b = yield from fe.cuda_malloc(MATRIX)
        c = yield from fe.cuda_malloc(MATRIX)
        yield from fe.launch_kernel(k, [a])      # A dirty on device
        yield from fe.launch_kernel(k, [b])      # B dirty
        yield from fe.launch_kernel(k, [c])      # evicts A → write-back
        assert h.stats.swap_bytes_out >= MATRIX
        yield from fe.launch_kernel(k, [a])      # A faults back in
        yield from fe.cuda_thread_exit()

    p = h.spawn(app())
    h.run(until=p)
    assert h.stats.swap_bytes_in >= MATRIX


# ---------------------------------------------------------------------------
# inter-application swap
# ---------------------------------------------------------------------------

def _two_tenant_harness(**config_kwargs):
    cfg = RuntimeConfig(vgpus_per_device=2, **config_kwargs)
    return Harness(specs=[SMALL_GPU], config=cfg)


def _tenant(h, name, hold_s, results):
    """Allocates one matrix, launches, then sits in a CPU phase."""

    def app():
        fe = yield from open_app(h, name)
        k = kernel(name=f"{name}-k")
        a = yield from fe.cuda_malloc(2 * MATRIX)
        yield from fe.cuda_memcpy_h2d(a, 2 * MATRIX)
        yield from fe.launch_kernel(k, [a])
        yield h.env.timeout(hold_s)  # CPU phase: eligible swap victim
        yield from fe.launch_kernel(k, [a])
        yield from fe.cuda_memcpy_d2h(a, 2 * MATRIX)
        yield from fe.cuda_thread_exit()
        results[name] = h.env.now

    return app()


def test_inter_application_swap_time_shares_device():
    """Two tenants of 300 MiB each on a 448 MiB-usable device: the second
    launch must swap the first application out (§4.5)."""
    h = _two_tenant_harness()
    results = {}
    h.spawn(_tenant(h, "t1", hold_s=5.0, results=results))
    h.spawn(_tenant(h, "t2", hold_s=5.0, results=results))
    h.run()
    assert set(results) == {"t1", "t2"}  # both completed
    assert h.stats.swaps_inter >= 1


def test_inter_swap_victim_unbound_and_rebinds():
    h = _two_tenant_harness()
    results = {}
    h.spawn(_tenant(h, "t1", hold_s=5.0, results=results))
    h.spawn(_tenant(h, "t2", hold_s=5.0, results=results))
    h.run()
    # The victim had to rebind for its second launch: at least 3 bindings
    # total (t1, t2, victim again).
    assert h.stats.bindings >= 3
    assert h.stats.unbindings >= h.stats.bindings - 0  # all eventually unbound


def test_inter_swap_disabled_falls_back_to_retry():
    h = _two_tenant_harness(enable_inter_swap=False, swap_retry_backoff_s=1e-3)
    results = {}
    h.spawn(_tenant(h, "t1", hold_s=2.0, results=results))
    h.spawn(_tenant(h, "t2", hold_s=2.0, results=results))
    h.run()
    assert set(results) == {"t1", "t2"}  # still completes, via retries
    assert h.stats.swaps_inter == 0
    assert h.stats.swap_retries >= 1


def test_no_swap_of_gpu_busy_application():
    """A GPU-intensive tenant (no CPU phases) never honors swap requests,
    so the second tenant must retry-unbind rather than evict it mid-run
    ("enabling swaps only during CPU phases allows GPU intensive
    applications to make full use of the GPU")."""
    h = _two_tenant_harness(swap_retry_backoff_s=1e-3)
    done = {}

    def busy(name):
        def app():
            fe = yield from open_app(h, name)
            k = kernel(seconds=0.2)
            a = yield from fe.cuda_malloc(2 * MATRIX)
            for _ in range(10):  # back-to-back kernels, no CPU gaps
                yield from fe.launch_kernel(k, [a])
            yield from fe.cuda_thread_exit()
            done[name] = h.env.now

        return app()

    h.spawn(busy("b1"))
    h.spawn(busy("b2"))
    h.run()
    assert set(done) == {"b1", "b2"}


def test_swap_counts_match_context_counters():
    h = _two_tenant_harness()
    results = {}
    h.spawn(_tenant(h, "t1", hold_s=5.0, results=results))
    h.spawn(_tenant(h, "t2", hold_s=5.0, results=results))
    h.run()
    suffered = sum(c.swaps_suffered for c in h.runtime.dispatcher.contexts)
    assert suffered == h.stats.swaps_inter
