"""Nested data-structure support (paper §1, §4.5)."""

import pytest

from repro.core import RuntimeConfig
from repro.core.errors import RuntimeApiError
from repro.core.memory.nested import NestedStructure
from repro.core.memory.page_table import EntryType, PageTableEntry
from repro.simcuda import GPUSpec, KernelDescriptor

from tests.core.conftest import Harness, MIB


def kernel(seconds=0.05, name="k"):
    from repro.simcuda import TESLA_C2050

    return KernelDescriptor(
        name=name, flops=seconds * TESLA_C2050.effective_gflops * 1e9
    )


# ---------------------------------------------------------------------------
# registration record
# ---------------------------------------------------------------------------

def _pte(size=1024, vptr=0x1000):
    return PageTableEntry(vptr, size, EntryType.LINEAR)


def test_nested_structure_validation():
    parent = _pte(size=64)
    m1, m2 = _pte(vptr=0x2000), _pte(vptr=0x3000)
    reg = NestedStructure(parent, [m1, m2], [0, 8])
    assert reg.patch_bytes == 16
    assert reg.closure() == [parent, m1, m2]

    with pytest.raises(ValueError):
        NestedStructure(parent, [m1], [0, 8])  # not parallel
    with pytest.raises(ValueError):
        NestedStructure(parent, [], [])  # no members
    with pytest.raises(ValueError):
        NestedStructure(parent, [m1], [100])  # offset outside parent


# ---------------------------------------------------------------------------
# through the runtime
# ---------------------------------------------------------------------------

def test_registered_nested_structure_moves_as_a_unit(harness):
    """Launching on the parent implicitly materializes the members."""
    h = harness
    device = h.driver.devices[0]

    def app():
        fe = h.frontend("nested")
        yield from fe.open()
        k = kernel()
        parent = yield from fe.cuda_malloc(1 * MIB)
        m1 = yield from fe.cuda_malloc(4 * MIB)
        m2 = yield from fe.cuda_malloc(4 * MIB)
        yield from fe.register_nested(parent, [m1, m2], [0, 8])
        yield from fe.cuda_memcpy_h2d(m1, 4 * MIB)
        free_before = device.free_memory
        # Launch references only the parent...
        yield from fe.launch_kernel(k, [parent])
        # ...but parent + both members were allocated on the device.
        assert free_before - device.free_memory >= 9 * MIB
        yield from fe.cuda_thread_exit()

    p = h.spawn(app())
    h.run(until=p)


def test_nested_registration_requires_valid_pointers(harness):
    h = harness

    def app():
        fe = h.frontend("bad-nested")
        yield from fe.open()
        parent = yield from fe.cuda_malloc(MIB)
        with pytest.raises(RuntimeApiError):
            yield from fe.register_nested(parent, [0xBAD], [0])
        yield from fe.cuda_thread_exit()

    p = h.spawn(app())
    h.run(until=p)


def test_nested_structure_survives_swap():
    """Swapping a nested structure out and back preserves consistency:
    the whole closure is re-materialized and the parent re-patched."""
    small = GPUSpec(
        name="small", sm_count=14, cores_per_sm=32, clock_ghz=1.15,
        memory_bytes=512 * MIB,
    )
    h = Harness(specs=[small], config=RuntimeConfig(vgpus_per_device=1))

    def app():
        fe = h.frontend("nested-swap")
        yield from fe.open()
        k = KernelDescriptor(name="k", flops=small.effective_gflops * 1e9 * 0.01)
        parent = yield from fe.cuda_malloc(1 * MIB)
        m1 = yield from fe.cuda_malloc(250 * MIB)
        yield from fe.register_nested(parent, [m1], [0])
        other = yield from fe.cuda_malloc(250 * MIB)  # 501 MiB > 448 usable
        # Touch the nested structure, then force it out with `other`.
        yield from fe.launch_kernel(k, [parent])
        yield from fe.launch_kernel(k, [other])
        # Bring the nested structure back.
        yield from fe.launch_kernel(k, [parent])
        yield from fe.cuda_thread_exit()
        return True

    p = h.spawn(app())
    h.run(until=p)
    assert p.value is True
    assert h.stats.swaps_intra >= 1
